(* Tests for the HiPEC core: command encoding, programs, operands,
   static validation, the policy executor, the global frame manager,
   the security checker and the system-call layer — including full
   end-to-end fault handling under application policies. *)

open Hipec_core
open Hipec_vm
module Frame = Hipec_machine.Frame
module Pmap = Hipec_machine.Pmap
module T = Hipec_sim.Sim_time
module Engine = Hipec_sim.Engine
module Std = Operand.Std

(* ------------------------------------------------------------------ *)
(* Instruction encoding                                                *)
(* ------------------------------------------------------------------ *)

let sample_instrs =
  [
    Instr.Return Std.page_reg;
    Instr.Arith (Std.scratch0, Std.scratch1, Opcode.Arith_op.Add);
    Instr.Comp (Std.free_count, Std.reserved_target, Opcode.Comp_op.Gt);
    Instr.Logic (Std.scratch0, Std.scratch1, Opcode.Logic_op.Xor);
    Instr.Emptyq Std.free_queue;
    Instr.Inq (Std.active_queue, Std.page_reg);
    Instr.Jump 513;
    Instr.Dequeue (Std.page_reg, Std.free_queue, Opcode.Queue_end.Head);
    Instr.Enqueue (Std.page_reg, Std.inactive_queue, Opcode.Queue_end.Tail);
    Instr.Request 16;
    Instr.Release Std.scratch0;
    Instr.Flush Std.page_reg;
    Instr.Set (Std.page_reg, Opcode.Bit_action.Reset_bit, Opcode.Bit_which.Reference);
    Instr.Ref Std.page_reg;
    Instr.Mod Std.page_reg;
    Instr.Find (Std.page_reg, Std.fault_va);
    Instr.Activate 2;
    Instr.Fifo Std.active_queue;
    Instr.Lru Std.active_queue;
    Instr.Mru Std.active_queue;
  ]

let test_encode_decode_roundtrip () =
  List.iter
    (fun instr ->
      match Instr.decode (Instr.encode instr) with
      | Ok instr' ->
          Alcotest.(check string)
            (Format.asprintf "%a" Instr.pp instr)
            (Format.asprintf "%a" Instr.pp instr)
            (Format.asprintf "%a" Instr.pp instr')
      | Error e -> Alcotest.fail e)
    sample_instrs

let test_table2_byte_encoding () =
  (* Table 2 CC 1 of PageFault: 02 02 0C 01 = Comp $free_count $reserved gt *)
  let w = Instr.encode (Instr.Comp (Std.free_count, Std.reserved_target, Opcode.Comp_op.Gt)) in
  Alcotest.(check string) "Comp word" "02 02 0C 01" (Format.asprintf "%a" Instr.pp_word w);
  (* Table 2 CC 3: 07 0B 01 01 = DeQueue $page_reg $free_queue head *)
  let w = Instr.encode (Instr.Dequeue (Std.page_reg, Std.free_queue, Opcode.Queue_end.Head)) in
  Alcotest.(check string) "DeQueue word" "07 0B 01 01" (Format.asprintf "%a" Instr.pp_word w);
  (* Table 2 CC 6 of Lack_free_frame: 08 0B 03 02 = EnQueue to active tail *)
  let w = Instr.encode (Instr.Enqueue (Std.page_reg, Std.active_queue, Opcode.Queue_end.Tail)) in
  Alcotest.(check string) "EnQueue word" "08 0B 03 02" (Format.asprintf "%a" Instr.pp_word w);
  (* Table 2 CC 2: 06 00 00 05 = Jump 5 *)
  let w = Instr.encode (Instr.Jump 5) in
  Alcotest.(check string) "Jump word" "06 00 00 05" (Format.asprintf "%a" Instr.pp_word w);
  (* Table 2 CC 5: 10 02 = Activate event 2 *)
  let w = Instr.encode (Instr.Activate 2) in
  Alcotest.(check string) "Activate word" "10 02 00 00" (Format.asprintf "%a" Instr.pp_word w)

let test_decode_rejects_garbage () =
  (match Instr.decode 0xFF000000l with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown opcode");
  (* Comp with flag 9 is invalid *)
  match Instr.decode 0x02010209l with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad comparison flag"

let test_opcode_codes_match_table1 () =
  Alcotest.(check int) "Return" 0x00 (Opcode.code Opcode.Return);
  Alcotest.(check int) "Jump" 0x06 (Opcode.code Opcode.Jump);
  Alcotest.(check int) "Request" 0x09 (Opcode.code Opcode.Request);
  Alcotest.(check int) "Find" 0x0F (Opcode.code Opcode.Find);
  Alcotest.(check int) "MRU" 0x13 (Opcode.code Opcode.Mru);
  Alcotest.(check int) "twenty opcodes" 20 (List.length Opcode.all);
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Opcode.name op ^ " roundtrip")
        true
        (Opcode.of_code (Opcode.code op) = Some op
        && Opcode.of_name (Opcode.name op) = Some op))
    Opcode.all

let test_table2_pagefault_program_bytes () =
  (* The paper's Table 2 PageFault listing, word for word.  The paper
     numbers commands from CC 1 (its magic word sits at CC 0; our image
     keeps the magic out of band), so its jump targets are ours + 1. *)
  let expected =
    [ "02 02 0C 01"  (* if (_free_count > reserved_target)       *)
    ; "06 00 00 04"  (* /* else */ Jump        (paper: Jump 5)   *)
    ; "07 0B 01 01"  (* DeQueue page from _free_queue            *)
    ; "00 0B 00 00"  (* Return page                              *)
    ; "10 02 00 00"  (* Activate Lack_free_frame                 *)
    ; "06 00 00 02"  (* Jump                   (paper: Jump 3)   *)
    ]
  in
  let code = Option.get (Program.code (Policies.fifo_second_chance ()) ~event:0) in
  Alcotest.(check (list string))
    "PageFault bytes match the paper's Table 2" expected
    (List.map
       (fun i -> Format.asprintf "%a" Instr.pp_word (Instr.encode i))
       (Array.to_list code))

(* ------------------------------------------------------------------ *)
(* Program images and the assembler                                    *)
(* ------------------------------------------------------------------ *)

let test_program_image_roundtrip () =
  let program = Policies.fifo_second_chance () in
  let image = Program.to_image program in
  (* magic heads every event *)
  List.iter (fun (_, words) -> Alcotest.(check int32) "magic" Program.magic words.(0)) image;
  match Program.of_image image with
  | Ok program' ->
      Alcotest.(check (list int)) "events" (Program.events program) (Program.events program');
      Alcotest.(check int) "command count" (Program.total_commands program)
        (Program.total_commands program')
  | Error e -> Alcotest.fail e

let test_program_image_bad_magic () =
  let program = Policies.fifo () in
  let image =
    List.map
      (fun (ev, words) ->
        let words = Array.copy words in
        words.(0) <- 0xDEADBEEFl;
        (ev, words))
      (Program.to_image program)
  in
  match Program.of_image image with
  | Error e -> Alcotest.(check bool) "mentions magic" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted bad magic"

let test_program_bytes_roundtrip () =
  List.iter
    (fun p ->
      match Program.of_bytes (Program.to_bytes p) with
      | Ok p' ->
          Alcotest.(check (list int)) "events" (Program.events p) (Program.events p');
          List.iter
            (fun event ->
              let render q =
                Format.asprintf "%a"
                  (Format.pp_print_list Instr.pp)
                  (Array.to_list (Option.get (Program.code q ~event)))
              in
              Alcotest.(check string) "code" (render p) (render p'))
            (Program.events p)
      | Error e -> Alcotest.fail e)
    [ Policies.fifo (); Policies.mru (); Policies.clock (); Policies.fifo_second_chance () ]

let test_program_bytes_rejects_corruption () =
  let good = Program.to_bytes (Policies.fifo ()) in
  (* truncated *)
  (match Program.of_bytes (Bytes.sub good 0 (Bytes.length good - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated buffer");
  (* bad file magic *)
  let bad = Bytes.copy good in
  Bytes.set bad 0 'X';
  (match Program.of_bytes bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad magic");
  (* corrupt the opcode byte of the first command of the first event:
     header (8) + event header (8) + event magic (4) = offset 20 *)
  let bad = Bytes.copy good in
  Bytes.set bad 20 '\xEE';
  match Program.of_bytes bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown opcode"

let test_asm_labels () =
  let open Program.Asm in
  match
    assemble
      [ Label "top"; Op (Instr.Emptyq Std.free_queue); Jump_to "top"; Op (Instr.Return 0) ]
  with
  | Ok code ->
      Alcotest.(check int) "three instrs" 3 (Array.length code);
      Alcotest.(check bool) "jump resolved" true (code.(1) = Instr.Jump 0)
  | Error e -> Alcotest.fail e

let test_asm_undefined_label () =
  match Program.Asm.assemble [ Program.Asm.Jump_to "nowhere" ] with
  | Error e -> Alcotest.(check bool) "names label" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted undefined label"

let test_asm_duplicate_label () =
  let open Program.Asm in
  match assemble [ Label "x"; Op (Instr.Return 0); Label "x"; Op (Instr.Return 0) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted duplicate label"

(* ------------------------------------------------------------------ *)
(* Operands                                                            *)
(* ------------------------------------------------------------------ *)

let test_operand_typed_access () =
  let ops = Operand.create () in
  let _queues =
    Operand.install_std ops ~name:"t" ~free_target:4 ~inactive_target:8 ~reserved_target:2
  in
  Alcotest.(check bool) "int read" true (Operand.read_int ops Std.free_target = Ok 4);
  Alcotest.(check bool) "count reads as int" true (Operand.read_int ops Std.free_count = Ok 0);
  (match Operand.write_int ops Std.free_count 7 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "count must be read-only");
  (match Operand.read_queue ops Std.free_target with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "int read as queue");
  (match Operand.read_int ops 200 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty slot read")

let test_operand_count_is_live () =
  let ops = Operand.create () in
  let queues =
    Operand.install_std ops ~name:"t" ~free_target:4 ~inactive_target:8 ~reserved_target:2
  in
  let tbl = Frame.Table.create ~total:2 in
  Page_queue.enqueue_tail queues.Operand.free
    (Vm_page.create ~frame:(Option.get (Frame.Table.alloc tbl)));
  Alcotest.(check bool) "count follows queue" true
    (Operand.read_int ops Std.free_count = Ok 1)

(* ------------------------------------------------------------------ *)
(* Static validation (the security checker's first duty)               *)
(* ------------------------------------------------------------------ *)

let std_ops () =
  let ops = Operand.create () in
  let _ =
    Operand.install_std ops ~name:"v" ~free_target:4 ~inactive_target:8 ~reserved_target:2
  in
  ops

let one_event_program code =
  Program.make
    [
      (Events.page_fault, code);
      (Events.reclaim_frame, [| Instr.Return Std.null |]);
    ]

let test_validate_accepts_library_policies () =
  let ops = std_ops () in
  List.iter
    (fun (name, p) ->
      match Checker.validate p ops with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [
      ("fifo2c", Policies.fifo_second_chance ());
      ("fifo", Policies.fifo ());
      ("lru", Policies.lru ());
      ("mru", Policies.mru ());
      ("clock", Policies.clock ());
      ("greedy", Policies.greedy_request ~flavour:`Mru ~chunk:32);
      ("looping", Policies.looping ());
    ]

let expect_invalid name program =
  match Checker.validate program (std_ops ()) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail (name ^ ": accepted invalid program")

let test_validate_rejects_bad_operand_kind () =
  (* Comp on a queue operand *)
  expect_invalid "comp on queue"
    (one_event_program
       [| Instr.Comp (Std.free_queue, Std.null, Opcode.Comp_op.Eq); Instr.Return 0 |])

let test_validate_rejects_bad_jump () =
  expect_invalid "jump out of range"
    (one_event_program [| Instr.Jump 99; Instr.Return 0 |])

let test_validate_rejects_missing_return () =
  expect_invalid "no return" (one_event_program [| Instr.Jump 0 |])

let test_validate_rejects_fall_off_end () =
  expect_invalid "falls off end"
    (one_event_program [| Instr.Return 0; Instr.Emptyq Std.free_queue |])

let test_validate_rejects_undefined_activate () =
  expect_invalid "undefined event"
    (one_event_program [| Instr.Activate 9; Instr.Return 0 |])

let test_validate_rejects_undeclared_operand () =
  expect_invalid "undeclared operand"
    (one_event_program [| Instr.Emptyq 0x42; Instr.Return 0 |])

let test_validate_requires_mandatory_events () =
  let p = Program.make [ (Events.page_fault, [| Instr.Return Std.null |]) ] in
  match Checker.validate p (std_ops ()) with
  | Error e -> Alcotest.(check bool) "mentions ReclaimFrame" true (String.length e > 0)
  | Ok () -> Alcotest.fail "accepted program without ReclaimFrame"

(* ------------------------------------------------------------------ *)
(* End-to-end: HiPEC system on the simulated kernel                    *)
(* ------------------------------------------------------------------ *)

let make_sys ?(frames = 512) ?checker_timeout ?checker_wakeup ?(start_checker = true)
    ?max_steps () =
  let config = { Kernel.default_config with total_frames = frames; hipec_kernel = true } in
  let k = Kernel.create ~config () in
  let sys = Api.init ?checker_timeout ?checker_wakeup ?max_steps ~start_checker k in
  (k, sys)

let alloc_hipec (k, sys) ?(npages = 64) ?(min_frames = 32) policy =
  let task = Kernel.create_task k () in
  match Api.vm_allocate_hipec sys task ~npages (Api.default_spec ~policy ~min_frames) with
  | Ok (region, container) -> (task, region, container)
  | Error e -> Alcotest.fail ("vm_allocate_hipec: " ^ e)

let test_e2e_fault_within_min_frames () =
  let (k, _) as sys = make_sys () in
  let task, region, container = alloc_hipec sys ~npages:16 ~min_frames:32 (Policies.fifo ()) in
  let faults0 = Task.faults task in
  Kernel.touch_region k task region ~write:false;
  Alcotest.(check int) "16 faults" 16 (Task.faults task - faults0);
  Alcotest.(check int) "all resident" 16 (Container.resident_pages container);
  Alcotest.(check int) "frames held constant" 32 (Container.frames_held container);
  (* re-touch: no more faults *)
  Kernel.touch_region k task region ~write:false;
  Alcotest.(check int) "still 16" 16 (Task.faults task - faults0)

let test_e2e_policy_evicts_beyond_min_frames () =
  let (k, _) as sys = make_sys () in
  let task, region, container =
    alloc_hipec sys ~npages:100 ~min_frames:32 (Policies.fifo_second_chance ())
  in
  let faults0 = Task.faults task in
  Kernel.touch_region k task region ~write:true;
  Kernel.drain_io k;
  Alcotest.(check int) "100 faults" 100 (Task.faults task - faults0);
  Alcotest.(check bool) "resident bounded by allocation" true
    (Container.resident_pages container <= 32);
  Alcotest.(check int) "frames held constant" 32 (Container.frames_held container);
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table k));
  Alcotest.(check bool) "task alive" true (Task.alive task)

let test_e2e_dirty_eviction_writes_disk () =
  let (k, _) as sys = make_sys () in
  let task, region, _ = alloc_hipec sys ~npages:100 ~min_frames:16 (Policies.fifo ()) in
  Kernel.touch_region k task region ~write:true;
  Kernel.drain_io k;
  Alcotest.(check bool) "flush writes happened" true
    ((Frame_manager.stats (Api.manager (snd sys))).Frame_manager.flush_writes > 0
     || Hipec_machine.Disk.writes_completed (Kernel.disk k) > 0);
  (* evicted dirty pages must come back from swap *)
  let pageins_before = Task.pageins task in
  Kernel.touch_region k task region ~write:false;
  Kernel.drain_io k;
  Alcotest.(check bool) "pages restored from swap" true (Task.pageins task > pageins_before)

let test_e2e_mru_cyclic_fault_count () =
  (* the paper's join analysis: cyclic scan of N pages with M resident
     under MRU faults N the first pass then (N - M + 1) per pass *)
  let (k, _) as sys = make_sys ~frames:1024 () in
  let n = 100 and m = 50 and loops = 4 in
  let task, region, _ = alloc_hipec sys ~npages:n ~min_frames:m (Policies.mru ()) in
  let faults0 = Task.faults task in
  for _ = 1 to loops do
    Kernel.touch_region k task region ~write:false
  done;
  (* MRU keeps a stable prefix resident: faults ~= N + (loops-1)*(N-M+1) *)
  let expected = n + ((loops - 1) * (n - m + 1)) in
  let got = Task.faults task - faults0 in
  Alcotest.(check bool)
    (Printf.sprintf "fault count %d within 5%% of %d" got expected)
    true
    (abs (got - expected) * 20 <= expected)

let test_e2e_fifo_cyclic_thrashes () =
  (* same cyclic scan under FIFO: every access of every pass faults *)
  let (k, _) as sys = make_sys ~frames:1024 () in
  let n = 100 and m = 50 and loops = 4 in
  let task, region, _ = alloc_hipec sys ~npages:n ~min_frames:m (Policies.fifo ()) in
  let faults0 = Task.faults task in
  for _ = 1 to loops do
    Kernel.touch_region k task region ~write:false
  done;
  Alcotest.(check int) "every pass faults everything" (n * loops) (Task.faults task - faults0)

let test_e2e_request_grows_allocation () =
  let (k, _) as sys = make_sys ~frames:512 () in
  let task, region, container =
    alloc_hipec sys ~npages:100 ~min_frames:16
      (Policies.greedy_request ~flavour:`Fifo ~chunk:8)
  in
  Kernel.touch_region k task region ~write:false;
  Alcotest.(check bool) "allocation grew" true (Container.frames_held container > 16);
  Alcotest.(check bool) "requests granted" true
    ((Frame_manager.stats (Api.manager (snd sys))).Frame_manager.requests_granted > 0);
  ignore task

let test_e2e_looping_policy_demoted_by_checker () =
  let (k, _) as sys =
    make_sys ~checker_timeout:(T.ms 10) ~checker_wakeup:(T.ms 250) ~max_steps:5_000 ()
  in
  let task, region, container =
    alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.looping ())
  in
  (* the first fault spins until the checker demotes the region, then
     resolves under the default policy — the task survives *)
  Kernel.access_vpn k task ~vpn:region.Vm_map.start_vpn ~write:false;
  Alcotest.(check bool) "alive" true (Task.alive task);
  Alcotest.(check bool) "degraded" true (Container.degraded container);
  Alcotest.(check bool) "reason exposed" true
    (Api.demotion_reason (snd sys) container <> None);
  Alcotest.(check bool) "checker saw a timeout" true
    (Checker.timeouts_detected (Api.checker (snd sys)) > 0);
  (* the region keeps working end to end under the fallback policy *)
  Kernel.touch_region k task region ~write:true;
  Alcotest.(check bool) "alive after full touch" true (Task.alive task);
  Alcotest.(check int) "no longer admitted" 0
    (List.length (Frame_manager.containers (Api.manager (snd sys))));
  Alcotest.(check bool) "frames conserved after demotion" true
    (Frame.Table.check_conservation (Kernel.frame_table k))

let test_e2e_garbage_policy_demoted () =
  let (k, _) as sys = make_sys () in
  let task, region, container =
    alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.returns_garbage ())
  in
  Kernel.access_vpn k task ~vpn:region.Vm_map.start_vpn ~write:false;
  Alcotest.(check bool) "alive" true (Task.alive task);
  Alcotest.(check bool) "degraded" true (Container.degraded container);
  Kernel.touch_region k task region ~write:false;
  Alcotest.(check bool) "alive after full touch" true (Task.alive task);
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table k))

let test_e2e_command_buffer_write_kills () =
  let (k, _) as sys = make_sys () in
  let task, _, container = alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.fifo ()) in
  let buffer = Option.get (Api.command_buffer_region (snd sys) container) in
  try
    Kernel.access_vpn k task ~vpn:buffer.Vm_map.start_vpn ~write:true;
    Alcotest.fail "expected termination"
  with Kernel.Task_terminated (_, reason) ->
    Alcotest.(check string) "reason" "attempt to modify a HiPEC command buffer" reason

let test_e2e_invalid_policy_rejected_at_map_time () =
  let k, sys = make_sys () in
  let task = Kernel.create_task k () in
  let bad = one_event_program [| Instr.Jump 40; Instr.Return 0 |] in
  match
    Api.vm_allocate_hipec sys task ~npages:8 (Api.default_spec ~policy:bad ~min_frames:8)
  with
  | Error e -> Alcotest.(check bool) "mentions checker" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "invalid policy admitted"

let test_e2e_admission_rejected_when_oom () =
  let k, sys = make_sys ~frames:64 () in
  let task = Kernel.create_task k () in
  match
    Api.vm_allocate_hipec sys task ~npages:512
      (Api.default_spec ~policy:(Policies.fifo ()) ~min_frames:1024)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "admitted minFrame beyond physical memory"

let test_e2e_deallocate_returns_frames () =
  let (k, _) as sys = make_sys () in
  let free0 = Frame.Table.free_count (Kernel.frame_table k) in
  let task, region, container = alloc_hipec sys ~npages:32 ~min_frames:32 (Policies.fifo ()) in
  Kernel.touch_region k task region ~write:true;
  Api.vm_deallocate_hipec (snd sys) task container;
  Kernel.drain_io k;
  Alcotest.(check int) "all frames back" free0 (Frame.Table.free_count (Kernel.frame_table k));
  Alcotest.(check bool) "conserved" true (Frame.Table.check_conservation (Kernel.frame_table k))

let test_e2e_reclaim_via_admission_pressure () =
  (* First container takes most of memory via requests; admitting a
     second must reclaim from the first (FAFR normal reclamation). *)
  let (k, _) as sys = make_sys ~frames:256 () in
  let _task1, region1, container1 =
    alloc_hipec sys ~npages:200 ~min_frames:16
      (Policies.greedy_request ~flavour:`Fifo ~chunk:16)
  in
  Kernel.touch_region k (Container.task container1) region1 ~write:false;
  let held_before = Container.frames_held container1 in
  Alcotest.(check bool) "first grew fat" true (held_before > 100);
  let task2 = Kernel.create_task k () in
  (match
     Api.vm_allocate_hipec (snd sys) task2 ~npages:64
       (Api.default_spec ~policy:(Policies.fifo ()) ~min_frames:160)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("second admission failed: " ^ e));
  Alcotest.(check bool) "first shrank" true (Container.frames_held container1 < held_before);
  Alcotest.(check bool) "reclaim events ran" true
    ((Frame_manager.stats (Api.manager (snd sys))).Frame_manager.reclaim_events > 0)

let test_e2e_partition_burst_balance () =
  let (k, _) as sys = make_sys ~frames:256 () in
  let manager = Api.manager (snd sys) in
  Frame_manager.set_partition_burst manager 64;
  let _task, region, container =
    alloc_hipec sys ~npages:200 ~min_frames:16
      (Policies.greedy_request ~flavour:`Fifo ~chunk:16)
  in
  Kernel.touch_region k (Container.task container) region ~write:false;
  (* balance keeps the specific total from running away past the burst:
     overage is reclaimed down toward the watermark after each grant *)
  Alcotest.(check bool)
    (Printf.sprintf "specific total %d stays near burst 64" (Frame_manager.specific_total manager))
    true
    (Frame_manager.specific_total manager <= 96)

let test_e2e_fafr_order () =
  let (_, _) as sys = make_sys ~frames:512 () in
  let _, _, c1 = alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.fifo ()) in
  let _, _, c2 = alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.fifo ()) in
  let _, _, c3 = alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.fifo ()) in
  let order = List.map Container.id (Frame_manager.containers (Api.manager (snd sys))) in
  Alcotest.(check (list int)) "allocation order"
    [ Container.id c1; Container.id c2; Container.id c3 ]
    order

let test_e2e_hipec_overhead_small () =
  (* Table 3's shape: HiPEC handling of the same workload under the same
     policy costs only a couple of percent more than the native kernel *)
  let run_hipec () =
    let (k, _) as sys = make_sys ~frames:16_384 () in
    let task, region, _ =
      alloc_hipec sys ~npages:1024 ~min_frames:1024 (Policies.fifo_second_chance ())
    in
    let t0 = Kernel.now k in
    Kernel.touch_region k task region ~write:false;
    T.to_ms_f (T.sub (Kernel.now k) t0)
  in
  let run_native () =
    let k = Kernel.create ~config:{ Kernel.default_config with total_frames = 16_384 } () in
    let task = Kernel.create_task k () in
    let region = Kernel.vm_allocate k task ~npages:1024 in
    let t0 = Kernel.now k in
    Kernel.touch_region k task region ~write:false;
    T.to_ms_f (T.sub (Kernel.now k) t0)
  in
  let hipec = run_hipec () and native = run_native () in
  let overhead = (hipec -. native) /. native *. 100. in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.2f%% in [0.5, 4]" overhead)
    true
    (overhead > 0.5 && overhead < 4.0)

(* ------------------------------------------------------------------ *)
(* Checker dynamics                                                    *)
(* ------------------------------------------------------------------ *)

let test_map_object_hipec_rejects_managed () =
  let (k, _) as sys = make_sys () in
  let _task, region, _ = alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.fifo ()) in
  let task2 = Kernel.create_task k () in
  match
    Api.vm_map_object_hipec (snd sys) task2 ~obj:region.Vm_map.obj
      (Api.default_spec ~policy:(Policies.fifo ()) ~min_frames:8)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double-managed an object"

let test_checker_interval_halves_on_timeout () =
  let (k, _) as sys =
    make_sys ~checker_timeout:(T.ms 10) ~checker_wakeup:(T.sec 4) ~max_steps:2_000 ()
  in
  let checker = Api.checker (snd sys) in
  let before = T.to_ns (Checker.wakeup_interval checker) in
  let task, region, _ = alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.looping ()) in
  Kernel.access_vpn k task ~vpn:region.Vm_map.start_vpn ~write:false;
  Alcotest.(check bool) "interval halved after a detection" true
    (T.to_ns (Checker.wakeup_interval checker) <= before / 2)

let test_checker_adaptive_sleep_doubles () =
  let k, sys = make_sys ~start_checker:false ~checker_wakeup:(T.ms 500) () in
  let checker = Api.checker sys in
  Checker.start checker;
  (* no timeouts: interval doubles until the 8 s clamp *)
  Engine.run_until (Kernel.engine k) (T.sec 120);
  Alcotest.(check int) "clamped at 8s" (T.to_ns Checker.max_wakeup)
    (T.to_ns (Checker.wakeup_interval checker));
  Alcotest.(check bool) "scans happened" true (Checker.scans checker > 3);
  Checker.stop checker

let test_checker_clamps_at_min () =
  let _k, sys = make_sys ~start_checker:false () in
  let checker = Api.checker sys in
  (* a checker created with a tiny interval is clamped up to 250 ms *)
  ignore checker;
  let k2, sys2 = make_sys ~start_checker:false ~checker_wakeup:(T.ms 1) () in
  ignore k2;
  Alcotest.(check int) "clamped to 250ms" (T.to_ns Checker.min_wakeup)
    (T.to_ns (Checker.wakeup_interval (Api.checker sys2)))

let test_checker_scan_demotes_stamped_container () =
  let (k, _) as sys = make_sys ~start_checker:false ~checker_timeout:(T.ms 5) () in
  let task, _, container = alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.fifo ()) in
  (* simulate an executor stuck since long ago *)
  Container.set_execution_started container (Some (Kernel.now k));
  Hipec_sim.Engine.advance (Kernel.engine k) (T.ms 50);
  let demoted = Checker.scan_now (Api.checker (snd sys)) in
  Alcotest.(check int) "one demotion" 1 demoted;
  Alcotest.(check bool) "task alive" true (Task.alive task);
  Alcotest.(check bool) "degraded" true (Container.degraded container);
  Alcotest.(check bool) "container un-admitted" true
    (Frame_manager.containers (Api.manager (snd sys)) = []);
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table k))

let test_forced_reclaim_seizes_resident_pages () =
  let (k, _) as sys = make_sys ~frames:512 () in
  let task, region, container = alloc_hipec sys ~npages:32 ~min_frames:32 (Policies.fifo ()) in
  Kernel.touch_region k task region ~write:true;
  Alcotest.(check int) "all resident" 32 (Container.resident_pages container);
  let manager = Api.manager (snd sys) in
  let free_before = Frame.Table.free_count (Kernel.frame_table k) in
  let got = Frame_manager.forced_reclaim manager ~need:10 ~exclude:None in
  Alcotest.(check bool) (Printf.sprintf "seized %d >= 10" got) true (got >= 10);
  Alcotest.(check int) "frames freed" (free_before + got)
    (Frame.Table.free_count (Kernel.frame_table k));
  Alcotest.(check int) "container accounting" (32 - got) (Container.frames_held container);
  Alcotest.(check bool) "seizure counted" true
    ((Frame_manager.stats manager).Frame_manager.forced_seizures >= 10);
  (* the victim task survives: its pages refault on next touch *)
  Kernel.touch_region k task region ~write:false;
  Alcotest.(check bool) "task alive" true (Task.alive task);
  Kernel.drain_io k;
  Alcotest.(check bool) "conserved" true (Frame.Table.check_conservation (Kernel.frame_table k))

let test_forced_reclaim_respects_exclude () =
  let (_, _) as sys = make_sys ~frames:512 () in
  let _, _, c1 = alloc_hipec sys ~npages:16 ~min_frames:16 (Policies.fifo ()) in
  let manager = Api.manager (snd sys) in
  let got = Frame_manager.forced_reclaim manager ~need:8 ~exclude:(Some c1) in
  Alcotest.(check int) "nothing to seize" 0 got;
  Alcotest.(check int) "untouched" 16 (Container.frames_held c1)

(* ------------------------------------------------------------------ *)
(* Frame migration (paper section 6, future work)                      *)
(* ------------------------------------------------------------------ *)

let test_migrate_moves_free_slots () =
  let (_, _) as sys = make_sys ~frames:512 () in
  let _, _, c1 = alloc_hipec sys ~npages:32 ~min_frames:32 (Policies.fifo ()) in
  let _, _, c2 = alloc_hipec sys ~npages:32 ~min_frames:16 (Policies.fifo ()) in
  let manager = Api.manager (snd sys) in
  let total_before = Frame_manager.specific_total manager in
  let moved = Api.migrate_frames (snd sys) ~src:c1 ~dst:c2 ~n:10 in
  Alcotest.(check int) "ten moved" 10 moved;
  Alcotest.(check int) "src shrank" 22 (Container.frames_held c1);
  Alcotest.(check int) "dst grew" 26 (Container.frames_held c2);
  Alcotest.(check int) "total unchanged" total_before (Frame_manager.specific_total manager);
  Alcotest.(check int) "dst free queue got them" 26
    (Page_queue.length (Container.free_queue c2))

let test_migrate_capped_by_free_slots () =
  let (k, _) as sys = make_sys ~frames:512 () in
  let _, region1, c1 = alloc_hipec sys ~npages:32 ~min_frames:32 (Policies.fifo ()) in
  let _, _, c2 = alloc_hipec sys ~npages:32 ~min_frames:16 (Policies.fifo ()) in
  (* fault 30 pages in c1: only 2 free slots remain migratable *)
  for i = 0 to 29 do
    Kernel.access_vpn k (Container.task c1) ~vpn:(region1.Vm_map.start_vpn + i) ~write:false
  done;
  let moved = Api.migrate_frames (snd sys) ~src:c1 ~dst:c2 ~n:10 in
  Alcotest.(check int) "only the free slots moved" 2 moved;
  Alcotest.(check int) "src accounting" 30 (Container.frames_held c1)

let test_migrate_rejects_self_and_foreign () =
  let (_, _) as sys = make_sys ~frames:512 () in
  let _, _, c1 = alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.fifo ()) in
  (try
     ignore (Api.migrate_frames (snd sys) ~src:c1 ~dst:c1 ~n:1);
     Alcotest.fail "self migration accepted"
   with Invalid_argument _ -> ());
  (* a torn-down container is no longer a valid endpoint *)
  let _, _, c2 = alloc_hipec sys ~npages:8 ~min_frames:8 (Policies.fifo ()) in
  Api.vm_deallocate_hipec (snd sys) (Container.task c2) c2;
  try
    ignore (Api.migrate_frames (snd sys) ~src:c1 ~dst:c2 ~n:1);
    Alcotest.fail "migration to a removed container accepted"
  with Invalid_argument _ -> ()

let test_migrated_frames_usable_by_destination () =
  let (k, _) as sys = make_sys ~frames:512 () in
  let _, _, c1 = alloc_hipec sys ~npages:64 ~min_frames:64 (Policies.fifo ()) in
  let _, region2, c2 = alloc_hipec sys ~npages:64 ~min_frames:8 (Policies.fifo ()) in
  ignore (Api.migrate_frames (snd sys) ~src:c1 ~dst:c2 ~n:56);
  (* c2 can now keep all 64 pages resident without evicting *)
  Kernel.touch_region k (Container.task c2) region2 ~write:false;
  Kernel.touch_region k (Container.task c2) region2 ~write:false;
  Alcotest.(check int) "all resident, no refaults" 64 (Container.resident_pages c2);
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table k))

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_messages program =
  List.map (fun w -> w.Checker.Lint.message) (Checker.Lint.run program)

let test_lint_clean_policies () =
  List.iter
    (fun p ->
      Alcotest.(check (list string)) "no warnings" [] (lint_messages p))
    [ Policies.fifo (); Policies.mru (); Policies.clock (); Policies.fifo_second_chance () ]

let test_lint_detects_self_loop () =
  let warnings = lint_messages (Policies.looping ()) in
  Alcotest.(check bool) "self-loop flagged" true
    (List.exists (fun m -> m = "unconditional self-jump never terminates") warnings)

let test_lint_detects_unreachable () =
  let program =
    one_event_program
      [| Instr.Return Std.null; Instr.Arith (Std.scratch0, Std.null, Opcode.Arith_op.Inc);
         Instr.Return Std.null |]
  in
  let warnings = lint_messages program in
  Alcotest.(check bool) "unreachable flagged" true
    (List.exists (fun m -> m = "command is unreachable") warnings)

let test_lint_detects_orphan_event () =
  let program =
    Program.make
      [
        (Events.page_fault, [| Instr.Return Std.null |]);
        (Events.reclaim_frame, [| Instr.Return Std.null |]);
        (5, [| Instr.Return Std.null |]);
      ]
  in
  let warnings = lint_messages program in
  Alcotest.(check bool) "orphan flagged" true
    (List.exists (fun m -> m = "user event is never activated") warnings)

let test_lint_detects_request_in_reclaim () =
  let program =
    Program.make
      [
        (Events.page_fault, [| Instr.Return Std.null |]);
        (Events.reclaim_frame,
         [| Instr.Request 8; Instr.Jump 2; Instr.Return Std.null |]);
      ]
  in
  let warnings = lint_messages program in
  Alcotest.(check bool) "request-in-reclaim flagged" true
    (List.exists
       (fun m -> m = "Request while the manager is reclaiming can thrash")
       warnings)

let test_lint_request_via_activation_detected () =
  let program =
    Program.make
      [
        (Events.page_fault, [| Instr.Return Std.null |]);
        (Events.reclaim_frame, [| Instr.Activate 2; Instr.Return Std.null |]);
        (2, [| Instr.Request 8; Instr.Jump 2; Instr.Return Std.null |]);
      ]
  in
  let warnings = lint_messages program in
  Alcotest.(check bool) "transitive request flagged" true
    (List.exists
       (fun m -> m = "Request while the manager is reclaiming can thrash")
       warnings)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_instr_word_roundtrip =
  (* arbitrary valid instructions roundtrip through the 32-bit word *)
  let gen =
    QCheck.Gen.(
      let ix = int_bound 255 in
      oneof
        [
          map (fun a -> Instr.Return a) ix;
          map3 (fun a b f -> Instr.Arith (a, b, Option.get (Opcode.Arith_op.of_code (1 + (f mod 7))))) ix ix (int_bound 100);
          map3 (fun a b f -> Instr.Comp (a, b, Option.get (Opcode.Comp_op.of_code (1 + (f mod 6))))) ix ix (int_bound 100);
          map (fun cc -> Instr.Jump cc) (int_bound 65535);
          map3 (fun p q f -> Instr.Dequeue (p, q, if f mod 2 = 0 then Opcode.Queue_end.Head else Opcode.Queue_end.Tail)) ix ix (int_bound 100);
          map (fun n -> Instr.Request n) ix;
          map (fun q -> Instr.Mru q) ix;
        ])
  in
  QCheck.Test.make ~name:"instruction word roundtrip" ~count:500 (QCheck.make gen)
    (fun instr ->
      match Instr.decode (Instr.encode instr) with Ok i -> i = instr | Error _ -> false)

let prop_validated_policies_never_runtime_error_on_fault =
  (* any of the library policies, any touch pattern: the task survives
     and frames are conserved *)
  QCheck.Test.make ~name:"library policies never kill the task" ~count:25
    QCheck.(pair (int_bound 4) (list_of_size Gen.(1 -- 80) (int_bound 59)))
    (fun (which, touches) ->
      let policy =
        match which with
        | 0 -> Policies.fifo ()
        | 1 -> Policies.lru ()
        | 2 -> Policies.mru ()
        | 3 -> Policies.clock ()
        | _ -> Policies.fifo_second_chance ()
      in
      let (k, _) as sys = make_sys ~frames:256 () in
      let task, region, _ = alloc_hipec sys ~npages:60 ~min_frames:24 policy in
      List.iter
        (fun i ->
          Kernel.access_vpn k task ~vpn:(region.Vm_map.start_vpn + i) ~write:(i mod 3 = 0))
        touches;
      Kernel.drain_io k;
      Task.alive task && Frame.Table.check_conservation (Kernel.frame_table k))

let prop_frames_held_equals_slots_plus_resident =
  QCheck.Test.make ~name:"container frame accounting balances" ~count:25
    QCheck.(list_of_size Gen.(1 -- 60) (int_bound 49))
    (fun touches ->
      let (k, _) as sys = make_sys ~frames:256 () in
      let _task, region, container =
        alloc_hipec sys ~npages:50 ~min_frames:20 (Policies.fifo_second_chance ())
      in
      List.iter
        (fun i ->
          Kernel.access_vpn k (Container.task container)
            ~vpn:(region.Vm_map.start_vpn + i) ~write:false)
        touches;
      let queued =
        Page_queue.length (Container.free_queue container)
        + Page_queue.length (Container.active_queue container)
        + Page_queue.length (Container.inactive_queue container)
      in
      (* every held frame is either a queued slot or an off-queue resident
         page (there are none of the latter outside event execution) *)
      Container.frames_held container = queued)

(* Fuzz the executor: random instruction streams that happen to pass
   static validation must run without OCaml exceptions, and the machine
   must stay consistent whatever the outcome. *)
let prop_validated_random_programs_never_crash =
  let instr_gen =
    QCheck.Gen.(
      let slot = oneofl [ Std.null; Std.free_queue; Std.free_count; Std.active_queue;
                          Std.inactive_queue; Std.page_reg; Std.scratch0; Std.scratch1;
                          Std.free_target; Std.fault_va ] in
      oneof
        [
          map2 (fun a b -> Instr.Arith (a, b, Opcode.Arith_op.Add)) slot slot;
          map2 (fun a b -> Instr.Comp (a, b, Opcode.Comp_op.Lt)) slot slot;
          map (fun q -> Instr.Emptyq q) slot;
          map2 (fun p q -> Instr.Dequeue (p, q, Opcode.Queue_end.Head)) slot slot;
          map2 (fun p q -> Instr.Enqueue (p, q, Opcode.Queue_end.Tail)) slot slot;
          map (fun q -> Instr.Fifo q) slot;
          map (fun q -> Instr.Mru q) slot;
          map (fun p -> Instr.Ref p) slot;
          map (fun p -> Instr.Flush p) slot;
          map (fun n -> Instr.Request (n mod 8)) (int_bound 100);
          return (Instr.Release Std.scratch0);
          map (fun p -> Instr.Set (p, Opcode.Bit_action.Reset_bit, Opcode.Bit_which.Reference)) slot;
        ])
  in
  let gen = QCheck.Gen.(list_size (1 -- 12) instr_gen) in
  QCheck.Test.make ~name:"validated random programs never crash the kernel" ~count:200
    (QCheck.make gen)
    (fun instrs ->
      (* enforce the skip-next discipline mechanically, then terminate *)
      let with_jumps =
        List.concat_map
          (fun i ->
            if Opcode.is_test (Instr.opcode i) then [ i; Instr.Jump 0 ] else [ i ])
          instrs
      in
      let code = Array.of_list (with_jumps @ [ Instr.Return Std.page_reg ]) in
      let program =
        Program.make
          [ (Events.page_fault, code); (Events.reclaim_frame, [| Instr.Return Std.null |]) ]
      in
      let k, sys = make_sys ~frames:128 ~start_checker:false ~max_steps:2_000 () in
      let task = Kernel.create_task k () in
      match
        Api.vm_allocate_hipec sys task ~npages:16
          (Api.default_spec ~policy:program ~min_frames:16)
      with
      | Error _ -> true (* validation rejected it: nothing to run *)
      | Ok (region, _) -> (
          match Kernel.access_vpn k task ~vpn:region.Vm_map.start_vpn ~write:false with
          | () -> Frame.Table.check_conservation (Kernel.frame_table k)
          | exception Kernel.Task_terminated _ ->
              Frame.Table.check_conservation (Kernel.frame_table k)))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "hipec"
    [
      ( "encoding",
        [
          Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "table 2 bytes" `Quick test_table2_byte_encoding;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "table 1 opcode codes" `Quick test_opcode_codes_match_table1;
          Alcotest.test_case "table 2 PageFault golden" `Quick
            test_table2_pagefault_program_bytes;
        ] );
      ( "program",
        [
          Alcotest.test_case "image roundtrip" `Quick test_program_image_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_program_image_bad_magic;
          Alcotest.test_case "bytes roundtrip" `Quick test_program_bytes_roundtrip;
          Alcotest.test_case "bytes reject corruption" `Quick
            test_program_bytes_rejects_corruption;
          Alcotest.test_case "asm labels" `Quick test_asm_labels;
          Alcotest.test_case "asm undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "asm duplicate label" `Quick test_asm_duplicate_label;
        ] );
      ( "operand",
        [
          Alcotest.test_case "typed access" `Quick test_operand_typed_access;
          Alcotest.test_case "live counts" `Quick test_operand_count_is_live;
        ] );
      ( "validation",
        [
          Alcotest.test_case "accepts library policies" `Quick
            test_validate_accepts_library_policies;
          Alcotest.test_case "rejects bad operand kind" `Quick
            test_validate_rejects_bad_operand_kind;
          Alcotest.test_case "rejects bad jump" `Quick test_validate_rejects_bad_jump;
          Alcotest.test_case "rejects missing return" `Quick
            test_validate_rejects_missing_return;
          Alcotest.test_case "rejects fall off end" `Quick test_validate_rejects_fall_off_end;
          Alcotest.test_case "rejects undefined activate" `Quick
            test_validate_rejects_undefined_activate;
          Alcotest.test_case "rejects undeclared operand" `Quick
            test_validate_rejects_undeclared_operand;
          Alcotest.test_case "requires mandatory events" `Quick
            test_validate_requires_mandatory_events;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "fault within min frames" `Quick test_e2e_fault_within_min_frames;
          Alcotest.test_case "policy evicts beyond min" `Quick
            test_e2e_policy_evicts_beyond_min_frames;
          Alcotest.test_case "dirty eviction writes disk" `Quick
            test_e2e_dirty_eviction_writes_disk;
          Alcotest.test_case "mru cyclic fault count" `Quick test_e2e_mru_cyclic_fault_count;
          Alcotest.test_case "fifo cyclic thrashes" `Quick test_e2e_fifo_cyclic_thrashes;
          Alcotest.test_case "request grows allocation" `Quick
            test_e2e_request_grows_allocation;
          Alcotest.test_case "looping policy demoted" `Quick
            test_e2e_looping_policy_demoted_by_checker;
          Alcotest.test_case "garbage policy demoted" `Quick
            test_e2e_garbage_policy_demoted;
          Alcotest.test_case "command buffer write kills" `Quick
            test_e2e_command_buffer_write_kills;
          Alcotest.test_case "invalid policy rejected" `Quick
            test_e2e_invalid_policy_rejected_at_map_time;
          Alcotest.test_case "admission rejected when oom" `Quick
            test_e2e_admission_rejected_when_oom;
          Alcotest.test_case "deallocate returns frames" `Quick
            test_e2e_deallocate_returns_frames;
          Alcotest.test_case "reclaim via admission pressure" `Quick
            test_e2e_reclaim_via_admission_pressure;
          Alcotest.test_case "partition burst balance" `Quick test_e2e_partition_burst_balance;
          Alcotest.test_case "fafr order" `Quick test_e2e_fafr_order;
          Alcotest.test_case "hipec overhead small" `Quick test_e2e_hipec_overhead_small;
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "forced reclaim seizes" `Quick
            test_forced_reclaim_seizes_resident_pages;
          Alcotest.test_case "forced reclaim excludes" `Quick
            test_forced_reclaim_respects_exclude;
        ] );
      ( "migration",
        [
          Alcotest.test_case "moves free slots" `Quick test_migrate_moves_free_slots;
          Alcotest.test_case "capped by free slots" `Quick test_migrate_capped_by_free_slots;
          Alcotest.test_case "rejects self and foreign" `Quick
            test_migrate_rejects_self_and_foreign;
          Alcotest.test_case "frames usable by dst" `Quick
            test_migrated_frames_usable_by_destination;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean policies" `Quick test_lint_clean_policies;
          Alcotest.test_case "self loop" `Quick test_lint_detects_self_loop;
          Alcotest.test_case "unreachable" `Quick test_lint_detects_unreachable;
          Alcotest.test_case "orphan event" `Quick test_lint_detects_orphan_event;
          Alcotest.test_case "request in reclaim" `Quick test_lint_detects_request_in_reclaim;
          Alcotest.test_case "request via activation" `Quick
            test_lint_request_via_activation_detected;
        ] );
      ( "checker",
        [
          Alcotest.test_case "adaptive sleep doubles" `Quick
            test_checker_adaptive_sleep_doubles;
          Alcotest.test_case "clamps at min" `Quick test_checker_clamps_at_min;
          Alcotest.test_case "scan demotes stamped container" `Quick
            test_checker_scan_demotes_stamped_container;
          Alcotest.test_case "interval halves on timeout" `Quick
            test_checker_interval_halves_on_timeout;
          Alcotest.test_case "map object rejects managed" `Quick
            test_map_object_hipec_rejects_managed;
        ] );
      ( "properties",
        qc
          [
            prop_instr_word_roundtrip;
            prop_validated_policies_never_runtime_error_on_fault;
            prop_frames_held_equals_slots_plus_resident;
            prop_validated_random_programs_never_crash;
          ] );
    ]
