(* Tests for the pseudo-code translator: lexer, parser, code generator
   and the translated Figure 4 policy running end-to-end. *)

open Hipec_pseudoc
open Hipec_core
open Hipec_vm
module Frame = Hipec_machine.Frame
module Std = Operand.Std

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tokens_of src =
  match Lexer.tokenize src with
  | Ok toks -> List.map (fun t -> t.Token.token) toks
  | Error e -> Alcotest.fail e

let test_lexer_basics () =
  Alcotest.(check bool) "keywords and idents" true
    (tokens_of "event PageFault() { return page }"
    = [
        Token.Kw_event; Token.Ident "PageFault"; Token.Lparen; Token.Rparen; Token.Lbrace;
        Token.Kw_return; Token.Ident "page"; Token.Rbrace; Token.Eof;
      ])

let test_lexer_operators () =
  Alcotest.(check bool) "compound operators" true
    (tokens_of "== != <= >= && || ! = < >"
    = [
        Token.Eq; Token.Ne; Token.Le; Token.Ge; Token.And_and; Token.Or_or; Token.Bang;
        Token.Assign; Token.Lt; Token.Gt; Token.Eof;
      ])

let test_lexer_comments () =
  Alcotest.(check bool) "comments skipped" true
    (tokens_of "a // line\nb /* block\nstill */ c # hash\nd"
    = [ Token.Ident "a"; Token.Ident "b"; Token.Ident "c"; Token.Ident "d"; Token.Eof ])

let test_lexer_errors () =
  (match Lexer.tokenize "a & b" with
  | Error e -> Alcotest.(check bool) "location in error" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted single &");
  match Lexer.tokenize "/* unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unterminated comment"

let test_lexer_line_numbers () =
  match Lexer.tokenize "a\nb\n  c" with
  | Ok [ a; b; c; _eof ] ->
      Alcotest.(check int) "a line" 1 a.Token.line;
      Alcotest.(check int) "b line" 2 b.Token.line;
      Alcotest.(check int) "c line" 3 c.Token.line;
      Alcotest.(check int) "c column" 3 c.Token.column
  | Ok _ | Error _ -> Alcotest.fail "unexpected tokenization"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_ok src =
  match Parser.parse_string src with Ok p -> p | Error e -> Alcotest.fail e

let minimal_events body =
  Printf.sprintf
    "event PageFault() { %s return page } event ReclaimFrame() { return }" body

let test_parse_figure4 () =
  let ast = parse_ok Translate.figure4_source in
  Alcotest.(check int) "three events" 3 (List.length ast.Ast.events);
  Alcotest.(check (list string)) "event names"
    [ "PageFault"; "Lack_free_frame"; "ReclaimFrame" ]
    (List.map (fun e -> e.Ast.event_name) ast.Ast.events)

let test_parse_if_else_nesting () =
  let ast =
    parse_ok
      (minimal_events
         "if (_free_count > 0) { page = dequeue_head(_free_queue) } else { if (empty(_active_queue)) { Other() } }")
  in
  match (List.hd ast.Ast.events).Ast.body with
  | [ Ast.If (_, [ Ast.Dequeue (`Head, "_free_queue") ], [ Ast.If (_, [ Ast.Activate "Other" ], []) ]); _ ] ->
      ()
  | _ -> Alcotest.fail "unexpected AST shape"

let test_parse_precedence () =
  (* a + b * c parses as a + (b * c); && binds tighter than || *)
  let ast = parse_ok (minimal_events "x = a + b * c") in
  (match (List.hd ast.Ast.events).Ast.body with
  | [ Ast.Assign ("x", Ast.Binop (Ast.Add, Ast.Var "a", Ast.Binop (Ast.Mul, Ast.Var "b", Ast.Var "c"))); _ ] ->
      ()
  | _ -> Alcotest.fail "arith precedence wrong");
  let ast =
    parse_ok (minimal_events "if (empty(_free_queue) || referenced(page) && modified(page)) { flush(page) }")
  in
  match (List.hd ast.Ast.events).Ast.body with
  | [ Ast.If (Ast.Or (Ast.Empty _, Ast.And (Ast.Referenced, Ast.Modified)), _, _); _ ] -> ()
  | _ -> Alcotest.fail "boolean precedence wrong"

let test_parse_parenthesized_cond_vs_expr () =
  (* "(a) < b" must parse as a comparison, "(a < b) && c-like" as a cond *)
  let ast = parse_ok (minimal_events "if ((x) < 3) { flush(page) }") in
  (match (List.hd ast.Ast.events).Ast.body with
  | [ Ast.If (Ast.Cmp (Ast.Lt, Ast.Var "x", Ast.Int_lit 3), _, _); _ ] -> ()
  | _ -> Alcotest.fail "paren comparison wrong");
  let ast = parse_ok (minimal_events "if ((x < 3) && empty(_free_queue)) { flush(page) }") in
  match (List.hd ast.Ast.events).Ast.body with
  | [ Ast.If (Ast.And (Ast.Cmp (Ast.Lt, _, _), Ast.Empty _), _, _); _ ] -> ()
  | _ -> Alcotest.fail "paren cond wrong"

let test_parse_errors_have_location () =
  match Parser.parse_string "event PageFault() { if }" with
  | Error e ->
      Alcotest.(check bool) "mentions line" true
        (String.length e >= 4 && String.sub e 0 4 = "line")
  | Ok _ -> Alcotest.fail "accepted bad program"

let test_parse_rejects_page_arith () =
  match Parser.parse_string (minimal_events "page = 3") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted page = 3"

(* ------------------------------------------------------------------ *)
(* Codegen                                                             *)
(* ------------------------------------------------------------------ *)

let compile_ok src =
  match Translate.translate src with Ok out -> out | Error e -> Alcotest.fail e

let ops_with_extras extras =
  let ops = Operand.create () in
  let _ =
    Operand.install_std ops ~name:"t" ~free_target:4 ~inactive_target:8 ~reserved_target:2
  in
  List.iter (fun (ix, v) -> Operand.set ops ix v) extras;
  ops

let test_codegen_figure4_validates () =
  let out = compile_ok Translate.figure4_source in
  let ops = ops_with_extras out.Codegen.extra_operands in
  (match Checker.validate out.Codegen.program ops with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "has all three events" true
    (Program.events out.Codegen.program = [ 0; 1; 2 ])

let test_codegen_event_numbering () =
  let out =
    compile_ok
      "event Helper2() { return } event PageFault() { Helper2() Helper1() page = \
       dequeue_head(_free_queue) return page } event ReclaimFrame() { return } event \
       Helper1() { return }"
  in
  let num name = List.assoc name out.Codegen.event_numbers in
  Alcotest.(check int) "PageFault" 0 (num "PageFault");
  Alcotest.(check int) "ReclaimFrame" 1 (num "ReclaimFrame");
  Alcotest.(check int) "Helper2 first user" 2 (num "Helper2");
  Alcotest.(check int) "Helper1 next" 3 (num "Helper1")

let test_codegen_rejects_unknown_names () =
  (match Translate.translate (minimal_events "x = nonexistent + 1") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown variable");
  (match Translate.translate (minimal_events "page = dequeue_head(not_a_queue)") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown queue");
  match Translate.translate (minimal_events "_free_count = 3") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted write to read-only count"

let test_codegen_rejects_missing_mandatory_event () =
  match Translate.translate "event PageFault() { return page }" with
  | Error e -> Alcotest.(check bool) "mentions ReclaimFrame" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted missing ReclaimFrame"

let test_codegen_var_slots () =
  let out =
    match
      Translate.translate
        ("var a = 5\nvar b = -3\n" ^ minimal_events "a = a + b")
    with
    | Ok out -> out
    | Error e -> Alcotest.fail e
  in
  (* vars occupy the first user slots with their initializers *)
  let a = List.assoc Std.first_user out.Codegen.extra_operands in
  let b = List.assoc (Std.first_user + 1) out.Codegen.extra_operands in
  (match (a, b) with
  | Operand.Int ra, Operand.Int rb ->
      Alcotest.(check int) "a init" 5 !ra;
      Alcotest.(check int) "b init" (-3) !rb
  | _ -> Alcotest.fail "vars are not ints")

(* ------------------------------------------------------------------ *)
(* Translated programs behave like the hand-coded library policies     *)
(* ------------------------------------------------------------------ *)

let make_sys ?(frames = 512) () =
  let config = { Kernel.default_config with total_frames = frames; hipec_kernel = true } in
  let k = Kernel.create ~config () in
  (k, Api.init k)

let run_workload policy_spec ~npages ~loops =
  let k, sys = make_sys () in
  let task = Kernel.create_task k () in
  match Api.vm_allocate_hipec sys task ~npages policy_spec with
  | Error e -> Alcotest.fail e
  | Ok (region, container) ->
      let faults0 = Task.faults task in
      for _ = 1 to loops do
        Kernel.touch_region k task region ~write:false
      done;
      Kernel.drain_io k;
      (Task.faults task - faults0, container, k)

let test_translated_figure4_matches_handcoded () =
  let min_frames = 32 in
  let translated =
    match Translate.to_spec Translate.figure4_source ~min_frames with
    | Ok spec -> spec
    | Error e -> Alcotest.fail e
  in
  let handcoded =
    Api.default_spec ~policy:(Policies.fifo_second_chance ()) ~min_frames
  in
  let f1, _, k1 = run_workload translated ~npages:100 ~loops:3 in
  let f2, _, k2 = run_workload handcoded ~npages:100 ~loops:3 in
  Alcotest.(check int) "identical fault counts" f2 f1;
  Alcotest.(check bool) "frames conserved (translated)" true
    (Frame.Table.check_conservation (Kernel.frame_table k1));
  Alcotest.(check bool) "frames conserved (handcoded)" true
    (Frame.Table.check_conservation (Kernel.frame_table k2))

let test_translated_mru_policy () =
  let src =
    {|
event PageFault() {
  if (empty(_free_queue)) {
    mru(_active_queue)
  }
  page = dequeue_head(_free_queue)
  return page
}
event ReclaimFrame() { return }
|}
  in
  let spec =
    match Translate.to_spec src ~min_frames:50 with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let faults, _, _ = run_workload spec ~npages:100 ~loops:4 in
  (* MRU keeps a stable prefix: ~ N + (loops-1)*(N-M+1) *)
  let expected = 100 + (3 * 51) in
  Alcotest.(check bool)
    (Printf.sprintf "MRU faults %d ~ %d" faults expected)
    true
    (abs (faults - expected) * 20 <= expected)

let test_translated_arithmetic_policy () =
  (* exercise expression compilation inside a live policy: grow the
     request size each time the free queue runs dry *)
  let src =
    {|
var chunk = 4
event PageFault() {
  if (empty(_free_queue)) {
    if (!request(8)) {
      fifo(_active_queue)
    }
    chunk = chunk * 2 + 1
  }
  page = dequeue_head(_free_queue)
  return page
}
event ReclaimFrame() { return }
|}
  in
  let spec =
    match Translate.to_spec src ~min_frames:8 with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let faults, container, _ = run_workload spec ~npages:60 ~loops:1 in
  Alcotest.(check int) "all pages faulted once" 60 faults;
  Alcotest.(check bool) "requests grew the allocation" true
    (Container.frames_held container > 8)

let test_listing_renders () =
  let out = compile_ok Translate.figure4_source in
  let text = Translate.listing out in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions PageFault" true (contains text "PageFault")

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_optimizer_threads_jump_chains () =
  (* Jump 1 -> Jump 2 -> Return collapses to a direct path *)
  let code =
    [| Instr.Jump 1; Instr.Jump 2; Instr.Return Std.null |]
  in
  let optimized = Optimizer.optimize_code code in
  Alcotest.(check int) "only the return survives" 1 (Array.length optimized);
  Alcotest.(check bool) "it is the return" true (optimized.(0) = Instr.Return Std.null)

let test_optimizer_drops_jump_to_next () =
  let code = [| Instr.Jump 1; Instr.Return Std.null |] in
  let optimized = Optimizer.optimize_code code in
  Alcotest.(check int) "jump dropped" 1 (Array.length optimized)

let test_optimizer_keeps_else_branch () =
  (* the else-Jump after a test targets the next instruction; removing it
     would break skip-next semantics, so it must stay *)
  let code =
    [|
      Instr.Emptyq Std.free_queue;
      Instr.Jump 2;
      Instr.Return Std.null;
    |]
  in
  let optimized = Optimizer.optimize_code code in
  Alcotest.(check int) "unchanged" 3 (Array.length optimized);
  Alcotest.(check bool) "else jump kept" true (optimized.(1) = Instr.Jump 2)

let test_optimizer_removes_dead_code () =
  let code =
    [|
      Instr.Return Std.null;
      Instr.Arith (Std.scratch0, Std.null, Opcode.Arith_op.Inc);
      Instr.Return Std.null;
    |]
  in
  let optimized = Optimizer.optimize_code code in
  Alcotest.(check int) "dead tail removed" 1 (Array.length optimized)

let test_optimizer_cycle_safe () =
  (* a self-loop threads to itself and must not hang the optimizer *)
  let code = [| Instr.Jump 0; Instr.Return Std.null |] in
  let optimized = Optimizer.optimize_code code in
  Alcotest.(check bool) "loop survives" true
    (Array.exists (function Instr.Jump _ -> true | _ -> false) optimized)

let test_optimizer_preserves_validation_and_behaviour () =
  (* translate with and without optimization: both validate, both fault
     identically, the optimized one is no longer *)
  let spec_of optimize =
    match Translate.translate ~optimize Translate.figure4_source with
    | Ok out -> out
    | Error e -> Alcotest.fail e
  in
  let plain = spec_of false and optimized = spec_of true in
  let before, after =
    Optimizer.savings ~before:plain.Codegen.program ~after:optimized.Codegen.program
  in
  Alcotest.(check bool)
    (Printf.sprintf "no longer than the original (%d -> %d)" before after)
    true (after <= before);
  let ops_of out = ops_with_extras out.Codegen.extra_operands in
  (match Checker.validate optimized.Codegen.program (ops_of optimized) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("optimized program rejected: " ^ e));
  let run out =
    let spec =
      {
        (Api.default_spec ~policy:out.Codegen.program ~min_frames:32) with
        Api.extra_operands = out.Codegen.extra_operands;
      }
    in
    let faults, _, _ = run_workload spec ~npages:100 ~loops:3 in
    faults
  in
  Alcotest.(check int) "identical fault behaviour" (run plain) (run optimized)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_optimizer_preserves_fault_counts =
  (* random generated policies: optimized and unoptimized translations
     fault identically on a fixed workload *)
  let stmt_gen =
    QCheck.Gen.oneofl
      [
        "x = x + 1";
        "if (x > 3) { x = 0 } else { x = x + 2 }";
        "while (x > 0) { x = x - 1 }";
        "if (referenced(page) && !modified(page)) { reset_reference(page) }";
        "if (empty(_inactive_queue) || x == 2) { x = 5 }";
      ]
  in
  let gen = QCheck.Gen.(map (String.concat " ") (list_size (1 -- 4) stmt_gen)) in
  QCheck.Test.make ~name:"optimizer preserves behaviour" ~count:15 (QCheck.make gen)
    (fun body ->
      let src =
        (* the dequeue comes first so page-inspecting fragments always
           see a loaded page register *)
        Printf.sprintf
          "var x = 1\nevent PageFault() { if (empty(_free_queue)) { \
           fifo(_active_queue) } page = dequeue_head(_free_queue) %s return page } event \
           ReclaimFrame() { return }"
          body
      in
      let run optimize =
        match Translate.translate ~optimize src with
        | Error _ -> -1
        | Ok out ->
            let spec =
              {
                (Api.default_spec ~policy:out.Codegen.program ~min_frames:16) with
                Api.extra_operands = out.Codegen.extra_operands;
              }
            in
            let faults, _, _ = run_workload spec ~npages:40 ~loops:2 in
            faults
      in
      let a = run false and b = run true in
      a >= 0 && a = b)

let prop_translated_always_validates =
  (* random small policies from a generator of valid ASTs: whatever the
     translator accepts, the security checker accepts too *)
  let template body =
    Printf.sprintf
      "event PageFault() { %s if (empty(_free_queue)) { fifo(_active_queue) } page = \
       dequeue_head(_free_queue) return page } event ReclaimFrame() { return }"
      body
  in
  let stmt_gen =
    QCheck.Gen.oneofl
      [
        "x = x + 1";
        "if (x > 3) { x = 0 }";
        "while (x > 0) { x = x - 1 }";
        "if (referenced(page) && !modified(page)) { reset_reference(page) }";
        "request(4)";
        "x = x * 2 % 7";
        "if (_free_count < free_target || empty(_active_queue)) { x = x + 2 }";
      ]
  in
  let gen = QCheck.Gen.(map (String.concat " ") (list_size (1 -- 5) stmt_gen)) in
  QCheck.Test.make ~name:"translated policies validate" ~count:100 (QCheck.make gen)
    (fun body ->
      match Translate.translate ("var x = 1\n" ^ template body) with
      | Error _ -> false
      | Ok out ->
          let ops = ops_with_extras out.Codegen.extra_operands in
          Checker.validate out.Codegen.program ops = Ok ())

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "pseudoc"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
        ] );
      ( "parser",
        [
          Alcotest.test_case "figure 4" `Quick test_parse_figure4;
          Alcotest.test_case "if/else nesting" `Quick test_parse_if_else_nesting;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "paren cond vs expr" `Quick test_parse_parenthesized_cond_vs_expr;
          Alcotest.test_case "error location" `Quick test_parse_errors_have_location;
          Alcotest.test_case "rejects page arith" `Quick test_parse_rejects_page_arith;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "figure 4 validates" `Quick test_codegen_figure4_validates;
          Alcotest.test_case "event numbering" `Quick test_codegen_event_numbering;
          Alcotest.test_case "rejects unknown names" `Quick test_codegen_rejects_unknown_names;
          Alcotest.test_case "rejects missing mandatory" `Quick
            test_codegen_rejects_missing_mandatory_event;
          Alcotest.test_case "var slots" `Quick test_codegen_var_slots;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "threads jump chains" `Quick test_optimizer_threads_jump_chains;
          Alcotest.test_case "drops jump to next" `Quick test_optimizer_drops_jump_to_next;
          Alcotest.test_case "keeps else branch" `Quick test_optimizer_keeps_else_branch;
          Alcotest.test_case "removes dead code" `Quick test_optimizer_removes_dead_code;
          Alcotest.test_case "cycle safe" `Quick test_optimizer_cycle_safe;
          Alcotest.test_case "preserves behaviour" `Quick
            test_optimizer_preserves_validation_and_behaviour;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "figure 4 matches handcoded" `Quick
            test_translated_figure4_matches_handcoded;
          Alcotest.test_case "mru policy" `Quick test_translated_mru_policy;
          Alcotest.test_case "arithmetic policy" `Quick test_translated_arithmetic_policy;
          Alcotest.test_case "listing renders" `Quick test_listing_renders;
        ] );
      ( "properties",
        qc [ prop_translated_always_validates; prop_optimizer_preserves_fault_counts ] );
    ]
