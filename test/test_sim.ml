(* Tests for the discrete-event simulation substrate (lib/sim). *)

module T = Hipec_sim.Sim_time
module Rng = Hipec_sim.Rng
module Eq = Hipec_sim.Event_queue
module Engine = Hipec_sim.Engine
module Stats = Hipec_sim.Stats

(* ------------------------------------------------------------------ *)
(* Sim_time                                                            *)
(* ------------------------------------------------------------------ *)

let test_time_constructors () =
  Alcotest.(check int) "us" 1_000 (T.to_ns (T.us 1));
  Alcotest.(check int) "ms" 1_000_000 (T.to_ns (T.ms 1));
  Alcotest.(check int) "sec" 1_000_000_000 (T.to_ns (T.sec 1));
  Alcotest.(check int) "of_us_f rounds" 1_500 (T.to_ns (T.of_us_f 1.5));
  Alcotest.(check int) "of_ms_f" 2_500_000 (T.to_ns (T.of_ms_f 2.5));
  Alcotest.(check int) "of_sec_f" 500_000_000 (T.to_ns (T.of_sec_f 0.5))

let test_time_arithmetic () =
  let a = T.us 5 and b = T.us 3 in
  Alcotest.(check int) "add" 8_000 (T.to_ns (T.add a b));
  Alcotest.(check int) "sub" 2_000 (T.to_ns (T.sub a b));
  Alcotest.(check int) "diff sym" (T.to_ns (T.diff a b)) (T.to_ns (T.diff b a));
  Alcotest.(check int) "mul" 15_000 (T.to_ns (T.mul a 3));
  Alcotest.(check int) "div" 2_500 (T.to_ns (T.div a 2));
  Alcotest.(check bool) "lt" true T.(b < a);
  Alcotest.(check bool) "ge" true T.(a >= b)

let test_time_negative_rejected () =
  Alcotest.check_raises "ns -1" (Invalid_argument "Sim_time.ns: negative") (fun () ->
      ignore (T.ns (-1)));
  Alcotest.check_raises "sub underflow" (Invalid_argument "Sim_time.sub: negative result")
    (fun () -> ignore (T.sub (T.us 1) (T.us 2)))

let test_time_conversions () =
  Alcotest.(check (float 1e-9)) "to_ms" 1.5 (T.to_ms_f (T.of_ms_f 1.5));
  Alcotest.(check (float 1e-9)) "to_min" 2.0 (T.to_min_f (T.sec 120))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.create ~seed:7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 17);
    let w = Rng.int_in r ~lo:5 ~hi:9 in
    Alcotest.(check bool) "int_in range" true (w >= 5 && w <= 9);
    let f = Rng.float r 3.0 in
    Alcotest.(check bool) "float range" true (f >= 0. && f < 3.0)
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:4.0 in
    Alcotest.(check bool) "non-negative" true (x >= 0.);
    total := !total +. x
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (mean > 3.7 && mean < 4.3)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Event_queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_eq_ordering () =
  let q = Eq.create () in
  Eq.add q ~time:(T.us 3) "c";
  Eq.add q ~time:(T.us 1) "a";
  Eq.add q ~time:(T.us 2) "b";
  let pop () = match Eq.pop q with Some (_, x) -> x | None -> Alcotest.fail "empty" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "drained" true (Eq.is_empty q)

let test_eq_fifo_ties () =
  let q = Eq.create () in
  for i = 0 to 9 do
    Eq.add q ~time:(T.us 5) i
  done;
  for i = 0 to 9 do
    match Eq.pop q with
    | Some (_, x) -> Alcotest.(check int) "tie order" i x
    | None -> Alcotest.fail "unexpected empty"
  done

let test_eq_random_sorted () =
  let r = Rng.create ~seed:99 in
  let q = Eq.create () in
  let times = Array.init 500 (fun _ -> Rng.int r 10_000) in
  Array.iter (fun t -> Eq.add q ~time:(T.ns t) t) times;
  Alcotest.(check int) "length" 500 (Eq.length q);
  let last = ref (-1) in
  let rec drain () =
    match Eq.pop q with
    | None -> ()
    | Some (t, _) ->
        Alcotest.(check bool) "monotone" true (T.to_ns t >= !last);
        last := T.to_ns t;
        drain ()
  in
  drain ()

let test_eq_peek_does_not_remove () =
  let q = Eq.create () in
  Eq.add q ~time:(T.us 1) 1;
  (match Eq.peek q with Some (_, 1) -> () | _ -> Alcotest.fail "peek");
  Alcotest.(check int) "still there" 1 (Eq.length q)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_advance () =
  let e = Engine.create () in
  Engine.advance e (T.us 10);
  Engine.advance e (T.us 5);
  Alcotest.(check int) "clock" 15_000 (T.to_ns (Engine.now e))

let test_engine_schedule_order () =
  let e = Engine.create () in
  let log = ref [] in
  let record tag _engine = log := tag :: !log in
  ignore (Engine.schedule e ~after:(T.us 2) (record "b"));
  ignore (Engine.schedule e ~after:(T.us 1) (record "a"));
  ignore (Engine.schedule e ~after:(T.us 3) (record "c"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "final clock" 3_000 (T.to_ns (Engine.now e))

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let fired = ref 0 in
  let rec chain n _engine =
    incr fired;
    if n > 1 then ignore (Engine.schedule e ~after:(T.us 1) (chain (n - 1)))
  in
  ignore (Engine.schedule e ~after:(T.us 1) (chain 5));
  Engine.run e;
  Alcotest.(check int) "all fired" 5 !fired;
  Alcotest.(check int) "clock advanced" 5_000 (T.to_ns (Engine.now e))

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~after:(T.us 1) (fun _ -> fired := true) in
  Engine.cancel e h;
  Alcotest.(check int) "no pending" 0 (Engine.pending e);
  Engine.run e;
  Alcotest.(check bool) "not fired" false !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~after:(T.us 1) (fun _ -> fired := 1 :: !fired));
  ignore (Engine.schedule e ~after:(T.us 10) (fun _ -> fired := 10 :: !fired));
  Engine.run_until e (T.us 5);
  Alcotest.(check (list int)) "only early event" [ 1 ] !fired;
  Alcotest.(check int) "clock at limit" 5_000 (T.to_ns (Engine.now e));
  Engine.run e;
  Alcotest.(check (list int)) "late event eventually" [ 10; 1 ] !fired

let test_engine_advance_past_event () =
  (* An [advance] that overshoots a pending event must not move the
     clock backward when that event later fires. *)
  let e = Engine.create () in
  let seen = ref T.zero in
  ignore (Engine.schedule e ~after:(T.us 2) (fun e -> seen := Engine.now e));
  Engine.advance e (T.us 10);
  Engine.run e;
  Alcotest.(check int) "fires at >= advanced clock" 10_000 (T.to_ns !seen)

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Engine.schedule e ~after:(T.us 1) (fun e ->
           incr count;
           if !count = 3 then Engine.stop e))
  done;
  Engine.run e;
  Alcotest.(check int) "stopped early" 3 !count

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Stats.Counter.create "x" in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

let test_summary () =
  let s = Stats.Summary.create "s" in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) (Stats.Summary.stddev s)

let test_summary_empty () =
  let s = Stats.Summary.create "e" in
  Alcotest.(check (float 0.)) "mean empty" 0. (Stats.Summary.mean s);
  Alcotest.(check (float 0.)) "stddev empty" 0. (Stats.Summary.stddev s)

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:4 ~lo:0. ~hi:4. "h" in
  List.iter (Stats.Histogram.add h) [ -1.; 0.; 0.5; 1.5; 3.9; 4.0; 7. ];
  Alcotest.(check int) "count" 7 (Stats.Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h);
  Alcotest.(check (array int)) "buckets" [| 2; 1; 0; 1 |] (Stats.Histogram.bucket_counts h)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_event_queue_sorted =
  QCheck.Test.make ~name:"event_queue pops sorted" ~count:200
    QCheck.(list (int_bound 100_000))
    (fun times ->
      let q = Eq.create () in
      List.iter (fun t -> Eq.add q ~time:(T.ns t) t) times;
      let rec drain acc =
        match Eq.pop q with None -> List.rev acc | Some (t, _) -> drain (T.to_ns t :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"rng int_in stays in range" ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let r = Rng.create ~seed in
      let v = Rng.int_in r ~lo ~hi in
      v >= lo && v <= hi)

let prop_summary_mean_bounded =
  QCheck.Test.make ~name:"summary mean within min..max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Summary.create "p" in
      List.iter (Stats.Summary.add s) xs;
      let m = Stats.Summary.mean s in
      m >= Stats.Summary.min s -. 1e-9 && m <= Stats.Summary.max s +. 1e-9)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "sim_time",
        [
          Alcotest.test_case "constructors" `Quick test_time_constructors;
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "negative rejected" `Quick test_time_negative_rejected;
          Alcotest.test_case "conversions" `Quick test_time_conversions;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "fifo ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "random sorted" `Quick test_eq_random_sorted;
          Alcotest.test_case "peek" `Quick test_eq_peek_does_not_remove;
        ] );
      ( "engine",
        [
          Alcotest.test_case "advance" `Quick test_engine_advance;
          Alcotest.test_case "schedule order" `Quick test_engine_schedule_order;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "advance past event" `Quick test_engine_advance_past_event;
          Alcotest.test_case "stop" `Quick test_engine_stop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary empty" `Quick test_summary_empty;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "properties",
        qc [ prop_event_queue_sorted; prop_rng_int_in_range; prop_summary_mean_bounded ] );
    ]
