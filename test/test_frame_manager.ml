(* Regression tests for the frame manager's executor services and
   seizure path:

   - Release of a page slot sitting on the ACTIVE queue (or on a queue
     the policy declared as a user operand) used to raise
     [Invalid_argument "remove of absent page"] inside the service,
     demoting a perfectly legal policy.  The service must unlink the
     slot from whichever container queue holds it and free the frame.

   - admit/request used to [assert] that the frame grant was complete;
     a short allocation (the pool shrinking under the pageout reserve)
     crashed the simulation.  Both must reject gracefully instead,
     counted in [requests_rejected].

   - seize_one's off-queue scan ignored pages still linked on a
     user-declared queue, freeing their frames while the queue node
     still pointed at them — corrupting the queue.  Forced reclamation
     must unlink before freeing; the auditor's sweep stays clean. *)

open Hipec_core
open Hipec_vm
module Frame = Hipec_machine.Frame
module Std = Operand.Std
open Program.Asm

let x_slot = Std.first_user
let r_slot = Std.first_user + 1
let uq_slot = Std.first_user + 2
let probe_event = 2

type harness = {
  kernel : Kernel.t;
  sys : Api.t;
  container : Container.t;
  x : int ref;
  user_q : Page_queue.t;
}

let asm items =
  match Program.Asm.assemble items with Ok code -> code | Error e -> failwith e

(* A system whose policy has the standard PageFault/ReclaimFrame pair
   plus the probe event under test, and a user-declared queue. *)
let make ?(x = 0) ?(r = 1) ?(min_frames = 8) ?(total_frames = 256) probe_code =
  let rx = ref x and rr = ref r in
  let user_q = Page_queue.create "user-q" in
  let program =
    Program.make
      [
        ( Events.page_fault,
          asm
            [
              Op (Instr.Emptyq Std.free_queue);
              Jump_to "take";
              Op (Instr.Fifo Std.active_queue);
              Jump_to "take";
              Label "take";
              Op (Instr.Dequeue (Std.page_reg, Std.free_queue, Opcode.Queue_end.Head));
              Op (Instr.Return Std.page_reg);
            ] );
        (Events.reclaim_frame, [| Instr.Return Std.null |]);
        (probe_event, probe_code);
      ]
  in
  let config = { Kernel.default_config with Kernel.total_frames; hipec_kernel = true } in
  let kernel = Kernel.create ~config () in
  let sys = Api.init ~start_checker:false kernel in
  let task = Kernel.create_task kernel () in
  let spec =
    {
      (Api.default_spec ~policy:program ~min_frames) with
      Api.extra_operands =
        [
          (x_slot, Operand.Int rx);
          (r_slot, Operand.Int rr);
          (uq_slot, Operand.Queue user_q);
        ];
    }
  in
  match Api.vm_allocate_hipec sys task ~npages:32 spec with
  | Error e -> failwith ("harness: " ^ e)
  | Ok (_region, container) -> { kernel; sys; container; x = rx; user_q }

let run h = Frame_manager.run_event (Api.manager h.sys) h.container ~event:probe_event

let fill_active h n =
  let region = Container.region h.container in
  for i = 0 to n - 1 do
    Kernel.access_vpn h.kernel (Container.task h.container)
      ~vpn:(region.Vm_map.start_vpn + i) ~write:false
  done

(* ------------------------------------------------------------------ *)
(* Release of a slot on any container queue                            *)
(* ------------------------------------------------------------------ *)

(* park a free slot on [dst], then Release it through the service *)
let release_probe dst =
  asm
    [
      Op (Instr.Dequeue (Std.page_reg, Std.free_queue, Opcode.Queue_end.Head));
      Op (Instr.Enqueue (Std.page_reg, dst, Opcode.Queue_end.Tail));
      Op (Instr.Release Std.page_reg);
      Jump_to "failed";
      Op (Instr.Return Std.null);
      Label "failed";
      Op (Instr.Return Std.page_reg);
    ]

let check_release_on dst queue_of () =
  let h = make (release_probe dst) in
  let before = Container.frames_held h.container in
  (match run h with
  | Executor.Returned _ -> ()
  | Executor.Runtime_error e -> Alcotest.fail ("service raised: " ^ e)
  | Executor.Timed_out -> Alcotest.fail "timed out");
  Alcotest.(check bool) "policy not demoted" false (Container.degraded h.container);
  Alcotest.(check int) "one frame released" (before - 1)
    (Container.frames_held h.container);
  let q = queue_of h in
  Alcotest.(check int)
    (Printf.sprintf "queue %s empty again" (Page_queue.name q))
    0 (Page_queue.length q);
  Alcotest.(check bool) "queue invariants" true (Page_queue.check_invariants q);
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table h.kernel))

let test_release_on_inactive =
  check_release_on Std.inactive_queue (fun h -> Container.inactive_queue h.container)

let test_release_on_active =
  check_release_on Std.active_queue (fun h -> Container.active_queue h.container)

let test_release_on_user_queue = check_release_on uq_slot (fun h -> h.user_q)

let test_release_off_queue () =
  (* a slot parked only in the page register: nothing to unlink *)
  let h =
    make
      (asm
         [
           Op (Instr.Dequeue (Std.page_reg, Std.free_queue, Opcode.Queue_end.Head));
           Op (Instr.Release Std.page_reg);
           Jump_to "failed";
           Op (Instr.Return Std.null);
           Label "failed";
           Op (Instr.Return Std.page_reg);
         ])
  in
  let before = Container.frames_held h.container in
  (match run h with
  | Executor.Returned _ -> ()
  | Executor.Runtime_error e -> Alcotest.fail ("service raised: " ^ e)
  | Executor.Timed_out -> Alcotest.fail "timed out");
  Alcotest.(check bool) "policy not demoted" false (Container.degraded h.container);
  Alcotest.(check int) "one frame released" (before - 1)
    (Container.frames_held h.container)

(* ------------------------------------------------------------------ *)
(* Graceful rejection when the pool cannot cover a grant               *)
(* ------------------------------------------------------------------ *)

let test_alloc_many_returns_partial () =
  (* the trigger: alloc_many is not all-or-nothing, so grant callers
     must never assume a full grant *)
  let tbl = Frame.Table.create ~total:4 in
  let frames = Frame.Table.alloc_many tbl 8 in
  Alcotest.(check int) "short allocation" 4 (List.length frames);
  List.iter (Frame.Table.free tbl) frames;
  Alcotest.(check bool) "conserved" true (Frame.Table.check_conservation tbl)

let test_admit_beyond_memory_rejects () =
  let config =
    { Kernel.default_config with Kernel.total_frames = 64; hipec_kernel = true }
  in
  let kernel = Kernel.create ~config () in
  let sys = Api.init ~start_checker:false kernel in
  let task = Kernel.create_task kernel () in
  let spec = Api.default_spec ~policy:(Policies.fifo ()) ~min_frames:1000 in
  (match Api.vm_allocate_hipec sys task ~npages:8 spec with
  | Ok _ -> Alcotest.fail "admission beyond physical memory must fail"
  | Error _ -> ());
  Alcotest.(check bool) "task survives" true (Task.alive task);
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table kernel))

let test_request_under_pressure_rejects () =
  let h =
    make ~total_frames:64
      (asm
         [
           (* 255 is the largest encodable request — far over a
              64-frame machine *)
           Op (Instr.Request 255);
           Jump_to "rejected";
           Op (Instr.Return Std.null);
           Label "rejected";
           Op (Instr.Arith (x_slot, x_slot, Opcode.Arith_op.Inc));
           Op (Instr.Return Std.null);
         ])
  in
  let manager = Api.manager h.sys in
  let rejected_before = (Frame_manager.stats manager).Frame_manager.requests_rejected in
  let held_before = Container.frames_held h.container in
  (match run h with
  | Executor.Returned _ -> ()
  | Executor.Runtime_error e -> Alcotest.fail ("request crashed the policy: " ^ e)
  | Executor.Timed_out -> Alcotest.fail "timed out");
  Alcotest.(check int) "rejected arm ran" 1 !(h.x);
  Alcotest.(check int) "rejection counted" (rejected_before + 1)
    (Frame_manager.stats manager).Frame_manager.requests_rejected;
  Alcotest.(check int) "no frames granted" held_before
    (Container.frames_held h.container);
  Alcotest.(check bool) "policy not demoted" false (Container.degraded h.container);
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table h.kernel))

(* ------------------------------------------------------------------ *)
(* Forced seizure of pages parked on a user-declared queue             *)
(* ------------------------------------------------------------------ *)

let test_forced_seize_unlinks_user_queue () =
  (* the probe migrates one resident page from active to the user
     queue, where the standard drain in seize_one cannot see it *)
  let h =
    make
      (asm
         [
           Op (Instr.Emptyq Std.active_queue);
           Jump_to "go";
           Jump_to "end";
           Label "go";
           Op (Instr.Dequeue (Std.page_reg, Std.active_queue, Opcode.Queue_end.Head));
           Op (Instr.Enqueue (Std.page_reg, uq_slot, Opcode.Queue_end.Tail));
           Label "end";
           Op (Instr.Return Std.null);
         ])
  in
  fill_active h 3;
  (match run h with
  | Executor.Returned _ -> ()
  | _ -> Alcotest.fail "probe failed");
  (match run h with
  | Executor.Returned _ -> ()
  | _ -> Alcotest.fail "probe failed");
  Alcotest.(check int) "two pages parked on the user queue" 2
    (Page_queue.length h.user_q);
  let manager = Api.manager h.sys in
  let held = Container.frames_held h.container in
  let got = Frame_manager.forced_reclaim manager ~need:held ~exclude:None in
  Alcotest.(check int) "every frame seized" held got;
  Alcotest.(check int) "container stripped" 0 (Container.frames_held h.container);
  (* no queue node may point at a freed frame *)
  Alcotest.(check int) "user queue unlinked" 0 (Page_queue.length h.user_q);
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Page_queue.name q ^ " invariants")
        true (Page_queue.check_invariants q))
    [
      h.user_q;
      Container.free_queue h.container;
      Container.inactive_queue h.container;
      Container.active_queue h.container;
    ];
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table h.kernel));
  let auditor = Audit.create ~raise_on_violation:false h.kernel in
  Audit.register_queue auditor h.user_q;
  Audit.register_queue auditor (Container.free_queue h.container);
  Audit.register_queue auditor (Container.inactive_queue h.container);
  Audit.register_queue auditor (Container.active_queue h.container);
  Alcotest.(check (list string)) "audit sweep clean" []
    (List.map (fun v -> v.Audit.check) (Audit.sweep auditor))

(* ------------------------------------------------------------------ *)
(* Overload protection: fuel throttling and admission shedding         *)
(* ------------------------------------------------------------------ *)

module T = Hipec_sim.Sim_time

let cheap_probe =
  asm [ Op (Instr.Arith (x_slot, x_slot, Opcode.Arith_op.Inc)); Op (Instr.Return Std.null) ]

let test_fuel_throttle_round_trip () =
  let h = make cheap_probe in
  let manager = Api.manager h.sys in
  (* any run at all blows a one-command budget *)
  Frame_manager.set_fuel_policy ~quota:1 ~window:(T.ms 1_000) ~cooldown:(T.ms 10)
    manager;
  (match run h with
  | Executor.Returned _ -> ()
  | Executor.Runtime_error e -> Alcotest.fail ("probe raised: " ^ e)
  | Executor.Timed_out -> Alcotest.fail "timed out");
  Alcotest.(check bool) "container throttled" true (Container.throttled h.container);
  Alcotest.(check bool) "not demoted" false (Container.degraded h.container);
  Alcotest.(check int) "entry counted" 1
    (Frame_manager.stats manager).Frame_manager.throttles_entered;
  Alcotest.(check bool) "floor held while throttled" true
    (Container.frames_held h.container >= Container.min_frames h.container);
  Alcotest.(check (list (pair string string))) "audit checks clean" []
    (Frame_manager.audit_check manager ());
  (* throttled faults are served by the kernel's default policy *)
  fill_active h 1;
  Alcotest.(check bool) "still throttled mid-cooldown" true
    (Container.throttled h.container);
  (* past the cooldown the next manager touchpoint lifts the throttle;
     the touchpoint must be a real fault, so touch a fresh page — and
     the budget must be sane again or that very fault re-trips it *)
  Frame_manager.set_fuel_policy ~quota:1_000_000 ~window:(T.ms 1_000)
    ~cooldown:(T.ms 10) manager;
  Hipec_sim.Engine.advance (Kernel.engine h.kernel) (T.ms 50);
  let region = Container.region h.container in
  Kernel.access_vpn h.kernel (Container.task h.container)
    ~vpn:(region.Vm_map.start_vpn + 7) ~write:false;
  Alcotest.(check bool) "throttle lifted" false (Container.throttled h.container);
  Alcotest.(check int) "exit counted" 1
    (Frame_manager.stats manager).Frame_manager.throttles_exited;
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table h.kernel))

let test_fuel_window_resets () =
  let h = make cheap_probe in
  let manager = Api.manager h.sys in
  (* a generous budget with a short window: repeated runs spread across
     windows must never trip the throttle *)
  Frame_manager.set_fuel_policy ~quota:1_000 ~window:(T.ms 1) ~cooldown:(T.ms 10)
    manager;
  for _ = 1 to 50 do
    (match run h with
    | Executor.Returned _ -> ()
    | _ -> Alcotest.fail "probe failed");
    Hipec_sim.Engine.advance (Kernel.engine h.kernel) (T.ms 2)
  done;
  Alcotest.(check bool) "never throttled" false (Container.throttled h.container);
  Alcotest.(check int) "no entries" 0
    (Frame_manager.stats manager).Frame_manager.throttles_entered

(* a bare container the frame manager has not seen yet, for driving
   try_admit directly *)
let raw_container kernel ~min_frames =
  let task = Kernel.create_task kernel () in
  let region = Kernel.vm_allocate kernel task ~npages:32 in
  let operands = Operand.create () in
  let queues =
    Operand.install_std operands ~name:"raw" ~free_target:4 ~inactive_target:8
      ~reserved_target:2
  in
  Container.create ~task ~obj:region.Vm_map.obj ~region
    ~program:(Policies.fifo_second_chance ()) ~operands ~queues ~min_frames ()

let test_admission_shed_and_drain () =
  let config =
    { Kernel.default_config with Kernel.total_frames = 256; hipec_kernel = true }
  in
  let kernel = Kernel.create ~config () in
  let sys = Api.init ~start_checker:false kernel in
  Api.enable_overload sys;
  let manager = Api.manager sys in
  (* wire all but a handful of frames: free sinks below the Critical
     watermark and, being wired, stays there *)
  let hog_task = Kernel.create_task kernel ~name:"hog" () in
  let hog = Kernel.vm_allocate kernel hog_task ~npages:251 in
  Kernel.wire_region kernel hog_task hog;
  Kernel.check_pressure kernel;
  Alcotest.(check bool) "pressure critical or worse" true
    (Pressure.severity (Frame_manager.pressure_level manager)
    >= Pressure.severity Pressure.Critical);
  (* default path queues the admission... *)
  let waiting = raw_container kernel ~min_frames:8 in
  (match Frame_manager.try_admit manager waiting with
  | Ok `Queued -> ()
  | Ok `Admitted -> Alcotest.fail "admitted under Critical pressure"
  | Error e -> Alcotest.fail (Frame_manager.admission_error_message e));
  Alcotest.(check int) "one admission waiting" 1
    (Frame_manager.pending_admissions manager);
  Alcotest.(check int) "no frames yet" 0 (Container.frames_held waiting);
  (* ...and the no-queue path sheds with a typed reason *)
  let shed = raw_container kernel ~min_frames:8 in
  (match Frame_manager.try_admit ~queue:false manager shed with
  | Error (Frame_manager.Overloaded _) -> ()
  | Error (Frame_manager.No_memory e) -> Alcotest.fail ("wrong rejection: " ^ e)
  | Ok _ -> Alcotest.fail "admitted under Critical pressure");
  Alcotest.(check int) "rejection counted" 1
    (Frame_manager.stats manager).Frame_manager.admissions_rejected;
  (* release the hog: pressure recovers one step per evaluation and the
     transition below Critical drains the queue automatically *)
  Kernel.vm_deallocate kernel hog_task hog;
  for _ = 1 to 4 do
    Kernel.check_pressure kernel
  done;
  Alcotest.(check bool) "pressure receded" true
    (Pressure.severity (Frame_manager.pressure_level manager)
    < Pressure.severity Pressure.Critical);
  Alcotest.(check int) "queue drained" 0 (Frame_manager.pending_admissions manager);
  Alcotest.(check bool) "waiter granted its floor" true
    (Container.frames_held waiting >= Container.min_frames waiting);
  Alcotest.(check (list (pair string string))) "audit checks clean" []
    (Frame_manager.audit_check manager ());
  Alcotest.(check bool) "frames conserved" true
    (Frame.Table.check_conservation (Kernel.frame_table kernel))

(* ------------------------------------------------------------------ *)
(* Property: admissions, seizures and removals conserve frames         *)
(* ------------------------------------------------------------------ *)

(* Random interleavings of the overload-path entry points — admission
   (accepted, shed or short), direct frame requests, emergency seizure
   and container teardown — must conserve the frame table at every step
   and keep the specific total equal to the sum of held frames (a
   double-free shows up as either). *)

let print_overload_ops ops =
  Printf.sprintf "[%s]" (String.concat ";" (List.map string_of_int ops))

let overload_ops_gen st =
  let open QCheck.Gen in
  let n = 4 + int_bound 16 st in
  List.init n (fun _ -> int_bound 99 st)

let overload_conservation_prop =
  QCheck.Test.make ~name:"overload paths conserve the frame table" ~count:40
    (QCheck.make ~print:print_overload_ops overload_ops_gen)
    (fun ops ->
      let config =
        { Kernel.default_config with Kernel.total_frames = 96; hipec_kernel = true }
      in
      let kernel = Kernel.create ~config () in
      let sys = Api.init ~start_checker:false kernel in
      let manager = Api.manager sys in
      let admitted = ref [] in
      let step choice =
        (match choice mod 5 with
        | 0 | 1 ->
            let c = raw_container kernel ~min_frames:(4 + (choice / 5 mod 3) * 8) in
            (match Frame_manager.try_admit ~queue:false manager c with
            | Ok `Admitted -> admitted := c :: !admitted
            | Ok `Queued | Error _ -> ())
        | 2 -> (
            match !admitted with
            | c :: _ -> ignore (Frame_manager.request manager c (1 + (choice / 5 mod 4)))
            | [] -> ())
        | 3 ->
            Frame_manager.emergency_seize manager
              ~level:(if choice mod 2 = 0 then Pressure.Emergency else Pressure.Critical)
        | _ -> (
            match !admitted with
            | c :: rest ->
                admitted := rest;
                Frame_manager.remove_container manager c ~flush_dirty:false
            | [] -> ()));
        if not (Frame.Table.check_conservation (Kernel.frame_table kernel)) then
          QCheck.Test.fail_reportf "frame table conservation broken after op %d" choice;
        let held =
          List.fold_left
            (fun acc c -> acc + Container.frames_held c)
            0 (Frame_manager.containers manager)
        in
        if held <> Frame_manager.specific_total manager then
          QCheck.Test.fail_reportf
            "specific total %d but containers hold %d after op %d"
            (Frame_manager.specific_total manager)
            held choice
      in
      List.iter step ops;
      List.iter
        (fun c -> Frame_manager.remove_container manager c ~flush_dirty:false)
        !admitted;
      Alcotest.(check bool) "conserved after teardown" true
        (Frame.Table.check_conservation (Kernel.frame_table kernel));
      Alcotest.(check int) "all specific frames returned" 0
        (Frame_manager.specific_total manager);
      true)

(* ------------------------------------------------------------------ *)
(* Property: the services never leak a kernel Invalid_argument         *)
(* ------------------------------------------------------------------ *)

(* Random checker-accepted programs hammering the fixed services —
   Release of slots parked on arbitrary queues, frame requests and
   count releases under a small physical memory — must never produce a
   "kernel check failed" runtime error (the executor's wrapping of
   [Invalid_argument]). *)

let pressure_snippet n choice =
  let l s = Printf.sprintf "s%d_%s" n s in
  match choice mod 5 with
  | 0 | 1 | 2 ->
      (* guarded: free slot -> some queue -> Release *)
      let dst =
        match choice mod 5 with
        | 0 -> Std.inactive_queue
        | 1 -> Std.active_queue
        | _ -> uq_slot
      in
      [
        Op (Instr.Emptyq Std.free_queue);
        Jump_to (l "go");
        Jump_to (l "end");
        Label (l "go");
        Op (Instr.Dequeue (Std.page_reg, Std.free_queue, Opcode.Queue_end.Head));
        Op (Instr.Enqueue (Std.page_reg, dst, Opcode.Queue_end.Tail));
        Op (Instr.Release Std.page_reg);
        Jump_to (l "end");
        Label (l "end");
      ]
  | 3 -> [ Op (Instr.Request ((choice / 5 mod 3) + 1)); Jump_to (l "end"); Label (l "end") ]
  | _ -> [ Op (Instr.Release r_slot); Jump_to (l "end"); Label (l "end") ]

let print_pressure (choices, faults) =
  Printf.sprintf "faults=%d snippets=[%s]" faults
    (String.concat ";" (List.map string_of_int choices))

let pressure_gen st =
  let open QCheck.Gen in
  let n = 1 + int_bound 6 st in
  (List.init n (fun _ -> int_bound 29 st), 1 + int_bound 6 st)

let no_kernel_failure_prop =
  QCheck.Test.make
    ~name:"checker-accepted programs never trip a kernel check" ~count:60
    (QCheck.make ~print:print_pressure pressure_gen)
    (fun (choices, faults) ->
      let code =
        asm
          (List.concat (List.mapi pressure_snippet choices)
          @ [ Op (Instr.Return Std.null) ])
      in
      let h = make ~total_frames:64 ~min_frames:4 code in
      let contains ~sub s =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      let check_outcome = function
        | Executor.Runtime_error e when contains ~sub:"kernel check failed" e ->
            QCheck.Test.fail_reportf "kernel check leaked: %s" e
        | _ -> ()
      in
      (try
         for i = 0 to faults - 1 do
           if not (Container.degraded h.container) then begin
             check_outcome (run h);
             if not (Container.degraded h.container) then fill_active h (1 + (i mod 3))
           end
         done
       with Invalid_argument e ->
         QCheck.Test.fail_reportf "Invalid_argument escaped: %s" e);
      Alcotest.(check bool) "frames conserved" true
        (Frame.Table.check_conservation (Kernel.frame_table h.kernel));
      true)

let () =
  Alcotest.run "frame_manager"
    [
      ( "release",
        [
          Alcotest.test_case "slot on the inactive queue" `Quick test_release_on_inactive;
          Alcotest.test_case "slot on the active queue" `Quick test_release_on_active;
          Alcotest.test_case "slot on a user-declared queue" `Quick
            test_release_on_user_queue;
          Alcotest.test_case "slot parked off-queue" `Quick test_release_off_queue;
        ] );
      ( "grants",
        [
          Alcotest.test_case "alloc_many is not all-or-nothing" `Quick
            test_alloc_many_returns_partial;
          Alcotest.test_case "admission beyond memory rejects" `Quick
            test_admit_beyond_memory_rejects;
          Alcotest.test_case "request under pressure rejects" `Quick
            test_request_under_pressure_rejects;
        ] );
      ( "seizure",
        [
          Alcotest.test_case "forced seize unlinks user queues" `Quick
            test_forced_seize_unlinks_user_queue;
        ] );
      ( "overload",
        [
          Alcotest.test_case "fuel throttle enters and recovers" `Quick
            test_fuel_throttle_round_trip;
          Alcotest.test_case "window rotation keeps honest policies clear" `Quick
            test_fuel_window_resets;
          Alcotest.test_case "critical pressure queues and sheds admissions" `Quick
            test_admission_shed_and_drain;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest no_kernel_failure_prop;
          QCheck_alcotest.to_alcotest overload_conservation_prop;
        ] );
    ]
