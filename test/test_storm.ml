(* The multi-tenant storm suite's acceptance properties, at smoke scale:

   - determinism: the same config produces the same trace digest on
     every run (the storm drives the full overload stack — pressure
     transitions, fuel throttling, admission shedding, emergency
     seizure — so a stray source of nondeterminism anywhere in that
     machinery shows up here);
   - safety: frame conservation holds at the end and the auditor's
     isolation checks never fire;
   - isolation: honest tenants' p99 access latency stays within 3x of
     the same storm with the greedy and erring tenants removed. *)

open Hipec_workloads

let run_smoke () = Storm.run Storm.smoke

let test_deterministic_digest () =
  let a = run_smoke () and b = run_smoke () in
  Alcotest.(check string) "same digest across runs" a.Storm.digest b.Storm.digest;
  Alcotest.(check int) "same fault count" a.Storm.total_faults b.Storm.total_faults

let test_storm_survives () =
  let r = run_smoke () in
  Alcotest.(check bool) "frame table conserved" true r.Storm.conservation_ok;
  Alcotest.(check int) "no audit violations" 0 r.Storm.audit_violations;
  Alcotest.(check bool) "honest tenants survive" true (r.Storm.honest_alive > 0);
  Alcotest.(check bool) "admission governor shed the late wave" true
    (r.Storm.shed > 0);
  Alcotest.(check bool) "fuel ledger throttled someone" true
    (r.Storm.throttles_entered > 0);
  Alcotest.(check bool) "emergency seizure fired" true
    (r.Storm.emergency_seizures > 0)

let test_honest_p99_regression () =
  let storm = run_smoke () in
  let baseline =
    Storm.run { Storm.smoke with Storm.greedy_every = 0; erring_every = 0 }
  in
  Alcotest.(check bool) "baseline produced samples" true
    (baseline.Storm.honest_samples > 0 && baseline.Storm.honest_p99_ns > 0);
  let ratio =
    float_of_int storm.Storm.honest_p99_ns
    /. float_of_int baseline.Storm.honest_p99_ns
  in
  if ratio > 3.0 then
    Alcotest.failf
      "honest p99 %d ns is %.2fx the greedy-free baseline %d ns (bound: 3x)"
      storm.Storm.honest_p99_ns ratio baseline.Storm.honest_p99_ns

let test_percentile () =
  Alcotest.(check int) "empty" 0 (Storm.percentile [||] 0.99);
  Alcotest.(check int) "singleton" 7 (Storm.percentile [| 7 |] 0.5);
  let xs = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "p50 of 1..100" 51 (Storm.percentile xs 0.50);
  Alcotest.(check int) "p99 of 1..100" 99 (Storm.percentile xs 0.99);
  (* unsorted input is sorted internally *)
  let ys = [| 30; 10; 20 |] in
  Alcotest.(check int) "max" 30 (Storm.percentile ys 1.0);
  (* and the shared independent reference agrees everywhere above *)
  List.iter
    (fun (samples, p) ->
      Alcotest.(check int) "matches Test_support.percentile"
        (Test_support.percentile samples p) (Storm.percentile samples p))
    [ ([||], 0.99); ([| 7 |], 0.5); (xs, 0.50); (xs, 0.99); (ys, 1.0); (ys, 0.0) ]

let () =
  Alcotest.run "storm"
    [
      ( "storm",
        [
          Alcotest.test_case "deterministic digest" `Quick test_deterministic_digest;
          Alcotest.test_case "conservation, audits and survival" `Quick
            test_storm_survives;
          Alcotest.test_case "honest p99 within 3x of greedy-free" `Quick
            test_honest_p99_regression;
          Alcotest.test_case "percentile helper" `Quick test_percentile;
        ] );
    ]
