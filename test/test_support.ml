(* Shared helpers for the test executables (every module in test/ links
   into each test binary, so this needs no dune wiring).

   The two nearest-rank percentile helpers below pin the *rank
   conventions* the production code promises: [percentile] mirrors
   [Storm.percentile] (rounded index, p in 0..1) and [percentile_exact]
   mirrors [Stats.Summary.percentile] (1-based ceil rank, p in 0..100).
   All three production entry points and these references now route
   through the one shared core, [Stats.Percentile.nearest_rank] —
   only the rank arithmetic lives here, spelled out independently so a
   broken convention in the wrappers can't hide. *)

(* Nearest-rank percentile over int samples, [p] in 0..1 — the
   reference for [Storm.percentile]: sorted.(round (p * (n-1))),
   0 on empty input. *)
let percentile (samples : int array) p =
  match
    Hipec_sim.Stats.Percentile.nearest_rank samples ~rank_of:(fun n ->
        int_of_float ((p *. float_of_int (n - 1)) +. 0.5))
  with
  | Some v -> v
  | None -> 0

(* Nearest-rank percentile over float samples, [p] in 0..100 — the
   reference for [Stats.Summary.percentile]: rank = ceil(p/100 * n)
   clamped to 1..n, 0 on empty input. *)
let percentile_exact (samples : float array) p =
  match
    Hipec_sim.Stats.Percentile.nearest_rank samples ~rank_of:(fun n ->
        int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)
  with
  | Some v -> v
  | None -> 0.
