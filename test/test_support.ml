(* Shared helpers for the test executables (every module in test/ links
   into each test binary, so this needs no dune wiring).

   The two nearest-rank percentile references below were previously
   duplicated ad hoc between test_storm.ml and the stats consumers in
   test_metrics.ml; the adversary tests use them too.  Each mirrors the
   exact semantics of the production helper it checks, implemented
   independently so a bug in the production code can't hide. *)

(* Nearest-rank percentile over int samples, [p] in 0..1 — the
   reference for [Storm.percentile]: sorted.(round (p * (n-1))),
   0 on empty input. *)
let percentile (samples : int array) p =
  match Array.length samples with
  | 0 -> 0
  | n ->
      let sorted = Array.copy samples in
      Array.sort compare sorted;
      sorted.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

(* Nearest-rank percentile over float samples, [p] in 0..100 — the
   reference for [Stats.Summary.percentile]: rank = ceil(p/100 * n)
   clamped to 1..n, 0 on empty input. *)
let percentile_exact (samples : float array) p =
  let n = Array.length samples in
  if n = 0 then 0.
  else begin
    let s = Array.copy samples in
    Array.sort compare s;
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let rank = Stdlib.max 1 (Stdlib.min n rank) in
    s.(rank - 1)
  end
