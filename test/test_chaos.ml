(* Tests for the robustness layer: the paging-I/O retry helper, the
   kernel auditor, and the chaos scenario that ties fault injection,
   retry, policy demotion and auditing together. *)

open Hipec_vm
open Hipec_core
open Hipec_workloads
module Disk = Hipec_machine.Disk
module Frame = Hipec_machine.Frame
module T = Hipec_sim.Sim_time
module Engine = Hipec_sim.Engine
module Rng = Hipec_sim.Rng

(* ------------------------------------------------------------------ *)
(* Io_retry                                                            *)
(* ------------------------------------------------------------------ *)

let make_disk ?(faults = Disk.Faults.none) () =
  let engine = Engine.create () in
  let disk = Disk.create ~faults ~engine ~rng:(Rng.create ~seed:7) () in
  (engine, disk)

let faults_cfg ?(seed = 11) ?(read_rate = 0.) ?(write_rate = 0.) ?(bad = []) () =
  {
    Disk.Faults.seed;
    transient_read_rate = read_rate;
    transient_write_rate = write_rate;
    latency_spike_rate = 0.;
    latency_spike = T.zero;
    bad_blocks = bad;
  }

let test_backoff_schedule () =
  let p = Io_retry.default_policy in
  let at n = T.to_ns (Io_retry.backoff p ~attempt:n) in
  Alcotest.(check int) "attempt 1 = base" (T.to_ns (T.ms 1)) (at 1);
  Alcotest.(check int) "attempt 2 doubles" (T.to_ns (T.ms 2)) (at 2);
  Alcotest.(check int) "attempt 3 doubles again" (T.to_ns (T.ms 4)) (at 3);
  Alcotest.(check int) "attempt 6 still exponential" (T.to_ns (T.ms 32)) (at 6);
  Alcotest.(check int) "attempt 7 capped" (T.to_ns (T.ms 50)) (at 7);
  Alcotest.(check int) "far attempts stay capped" (T.to_ns (T.ms 50)) (at 12)

(* A storm of transient write errors: every submission completes exactly
   once, every error is accounted as either a retry or a give-up, and
   the disk's success counter agrees with the retry layer's view. *)
let test_transient_write_storm () =
  let engine, disk = make_disk ~faults:(faults_cfg ~write_rate:0.3 ()) () in
  let stats = Io_retry.create_stats () in
  let n = 60 in
  let ok = ref 0 and failed = ref 0 in
  for i = 0 to n - 1 do
    Io_retry.submit_write stats disk
      ~remap:(fun _ -> None)
      ~block:(i * 64) ~nblocks:8
      (fun _ -> function Ok () -> incr ok | Error _ -> incr failed)
  done;
  Engine.run engine;
  Alcotest.(check int) "every write completed once" n (!ok + !failed);
  Alcotest.(check bool) "some transient errors injected" true (stats.Io_retry.io_errors > 0);
  Alcotest.(check bool) "some retries issued" true (stats.Io_retry.io_retries > 0);
  Alcotest.(check int) "errors = retries + giveups" stats.Io_retry.io_errors
    (stats.Io_retry.io_retries + stats.Io_retry.io_giveups);
  Alcotest.(check int) "give-ups are the failures" stats.Io_retry.io_giveups !failed;
  Alcotest.(check int) "disk counts only successes" !ok (Disk.writes_completed disk);
  Alcotest.(check int) "no remaps without bad blocks" 0 stats.Io_retry.swap_remaps

let test_bad_block_write_remaps () =
  let engine, disk = make_disk ~faults:(faults_cfg ~bad:[ 42 ] ()) () in
  let stats = Io_retry.create_stats () in
  let outcome = ref None in
  Io_retry.submit_write stats disk
    ~remap:(function Disk.Bad_block _ -> Some 4_096 | _ -> None)
    ~block:40 ~nblocks:8
    (fun _ r -> outcome := Some r);
  Engine.run engine;
  Alcotest.(check bool) "write succeeded on the remapped block" true
    (!outcome = Some (Ok ()));
  Alcotest.(check int) "one swap remap" 1 stats.Io_retry.swap_remaps;
  Alcotest.(check int) "one error, one retry" 2
    (stats.Io_retry.io_errors + stats.Io_retry.io_retries);
  Alcotest.(check int) "no give-up" 0 stats.Io_retry.io_giveups;
  Alcotest.(check int) "bad block hit once" 1 (Disk.bad_block_hits disk);
  Alcotest.(check int) "one successful write" 1 (Disk.writes_completed disk)

let test_bad_block_write_without_remap_gives_up () =
  let engine, disk = make_disk ~faults:(faults_cfg ~bad:[ 42 ] ()) () in
  let stats = Io_retry.create_stats () in
  let outcome = ref None in
  Io_retry.submit_write stats disk
    ~remap:(fun _ -> None)
    ~block:40 ~nblocks:8
    (fun _ r -> outcome := Some r);
  Engine.run engine;
  (match !outcome with
  | Some (Error (Disk.Bad_block { block = 42 })) -> ()
  | _ -> Alcotest.fail "expected Bad_block 42");
  Alcotest.(check int) "one give-up" 1 stats.Io_retry.io_giveups;
  Alcotest.(check int) "no retries" 0 stats.Io_retry.io_retries;
  Alcotest.(check int) "nothing written" 0 (Disk.writes_completed disk)

let test_sync_read_transient_retries () =
  let _, disk = make_disk ~faults:(faults_cfg ~seed:5 ~read_rate:0.3 ()) () in
  let stats = Io_retry.create_stats () in
  let charged = ref T.zero in
  let charge d = charged := T.add !charged d in
  let ok = ref 0 and failed = ref 0 in
  for i = 0 to 39 do
    match Io_retry.sync_read stats ~charge disk ~block:(i * 64) ~nblocks:8 with
    | Ok () -> incr ok
    | Error _ -> incr failed
  done;
  Alcotest.(check int) "every read resolved" 40 (!ok + !failed);
  Alcotest.(check bool) "transients retried" true (stats.Io_retry.io_retries > 0);
  Alcotest.(check int) "errors = retries + giveups" stats.Io_retry.io_errors
    (stats.Io_retry.io_retries + stats.Io_retry.io_giveups);
  Alcotest.(check int) "give-ups are the failures" stats.Io_retry.io_giveups !failed;
  Alcotest.(check bool) "service time and backoff charged" true (T.to_ns !charged > 0)

let test_sync_read_bad_block_gives_up_immediately () =
  let _, disk = make_disk ~faults:(faults_cfg ~bad:[ 42 ] ()) () in
  let stats = Io_retry.create_stats () in
  let charged = ref T.zero in
  (match
     Io_retry.sync_read stats
       ~charge:(fun d -> charged := T.add !charged d)
       disk ~block:40 ~nblocks:8
   with
  | Error (Disk.Bad_block { block = 42 }) -> ()
  | _ -> Alcotest.fail "expected Bad_block 42");
  Alcotest.(check int) "no retries on a bad backing block" 0 stats.Io_retry.io_retries;
  Alcotest.(check int) "one give-up" 1 stats.Io_retry.io_giveups;
  Alcotest.(check bool) "one attempt still charged" true (T.to_ns !charged > 0)

(* ------------------------------------------------------------------ *)
(* Audit                                                               *)
(* ------------------------------------------------------------------ *)

let test_audit_clean_kernel () =
  let k = Kernel.create ~config:{ Kernel.default_config with total_frames = 64 } () in
  let task = Kernel.create_task k () in
  let region = Kernel.vm_allocate k task ~npages:32 in
  Kernel.touch_region k task region ~write:true;
  Kernel.drain_io k;
  let auditor = Audit.create ~raise_on_violation:false k in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Audit.check) (Audit.sweep auditor));
  Alcotest.(check int) "one sweep recorded" 1 (Audit.sweeps auditor);
  Alcotest.(check int) "no violations recorded" 0 (Audit.violations_found auditor)

(* Plant a deliberately corrupt structure: a registered queue holding a
   page whose frame has been returned to the free pool. *)
let test_audit_detects_free_frame_on_queue () =
  let k = Kernel.create ~config:{ Kernel.default_config with total_frames = 64 } () in
  let auditor = Audit.create ~raise_on_violation:false k in
  let tbl = Kernel.frame_table k in
  let frame = List.hd (Frame.Table.alloc_many tbl 1) in
  let page = Vm_page.create ~frame in
  let rogue = Page_queue.create "rogue" in
  Page_queue.enqueue_tail rogue page;
  Frame.Table.free tbl frame;
  Audit.register_queue auditor rogue;
  let violations = Audit.sweep auditor in
  Alcotest.(check bool) "free-frame-on-queue flagged" true
    (List.exists (fun v -> v.Audit.check = "free-frame-on-queue") violations);
  Alcotest.(check bool) "violations recorded" true (Audit.violations_found auditor > 0);
  (* with [raise_on_violation] the same sweep raises *)
  let strict = Audit.create k in
  Audit.register_queue strict rogue;
  (match Audit.sweep strict with
  | exception Audit.Violation (_ :: _) -> ()
  | _ -> Alcotest.fail "strict auditor should raise");
  (* clean up so the queue cannot leak into later checks *)
  Audit.unregister_queue auditor rogue

(* ------------------------------------------------------------------ *)
(* Chaos scenario                                                      *)
(* ------------------------------------------------------------------ *)

(* A sub-second variant of the smoke config for unit tests. *)
let tiny =
  {
    Chaos.pages = 192;
    runaway_pages = 16;
    writer_pages = 320;
    total_frames = 256;
    seed = 1;
    transient_rate = 0.02;
    latency_spike_rate = 0.01;
    bad_swap_blocks = 2;
    audit_period = T.ms 50;
  }

let test_chaos_tiny_healthy () =
  let clean = Chaos.run ~faults:false tiny in
  let faulty = Chaos.run tiny in
  Alcotest.(check int) "clean: no injected faults" 0 clean.Chaos.faults_injected;
  Alcotest.(check int) "clean: no I/O errors" 0 clean.Chaos.io_errors;
  Alcotest.(check int) "no task killed" 0 faulty.Chaos.task_kills;
  Alcotest.(check bool) "runaway policy demoted" true (faulty.Chaos.demotions >= 1);
  Alcotest.(check bool) "demotion reason recorded" true
    (faulty.Chaos.demotion_reason <> None);
  Alcotest.(check int) "auditor saw nothing" 0 faulty.Chaos.audit_violations;
  Alcotest.(check bool) "auditor actually swept" true (faulty.Chaos.audit_sweeps > 0);
  Alcotest.(check bool) "faults injected" true (faulty.Chaos.faults_injected > 0);
  Alcotest.(check bool) "errors retried" true
    (faulty.Chaos.io_errors > 0 && faulty.Chaos.io_retries > 0);
  Alcotest.(check int) "every error recovered" 0 faulty.Chaos.io_giveups;
  Alcotest.(check bool) "bad swap blocks remapped" true (faulty.Chaos.swap_remaps > 0);
  Alcotest.(check bool) "faults cost time" true
    (Chaos.degradation_percent ~clean ~faulty >= 0.)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* ISSUE satellite: the same seed must produce a bit-identical Kstat
   report (and elapsed time) under fault injection. *)
let prop_chaos_deterministic =
  QCheck.Test.make ~name:"same seed, bit-identical Kstat under faults" ~count:3
    QCheck.(int_range 1 4)
    (fun seed ->
      let config = { tiny with Chaos.seed } in
      let a = Chaos.run config and b = Chaos.run config in
      a.Chaos.kstat = b.Chaos.kstat
      && a.Chaos.elapsed = b.Chaos.elapsed
      && a.Chaos.io_errors = b.Chaos.io_errors
      && a.Chaos.faults_injected = b.Chaos.faults_injected)

(* ISSUE satellite: frame conservation (and the auditor's full invariant
   sweep) must survive any interleaving of touches, migrations and
   demotions while the disk throws transient faults. *)
let prop_conservation_under_demote_migrate_faults =
  QCheck.Test.make ~name:"frames conserved under random demote/migrate/faults"
    ~count:25
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_bound 5) (int_bound 31)))
    (fun ops ->
      let config =
        {
          Kernel.default_config with
          total_frames = 128;
          hipec_kernel = true;
          seed = 3;
          disk_faults =
            Some (faults_cfg ~seed:9 ~read_rate:0.05 ~write_rate:0.05 ());
        }
      in
      let k = Kernel.create ~config () in
      let sys = Api.init k in
      let alloc name policy =
        let task = Kernel.create_task k ~name () in
        match
          Api.vm_allocate_hipec sys task ~npages:32
            (Api.default_spec ~policy ~min_frames:24)
        with
        | Ok (region, container) -> (task, region, container)
        | Error e -> QCheck.Test.fail_report ("vm_allocate_hipec: " ^ e)
      in
      let ta, ra, ca = alloc "a" (Policies.fifo ()) in
      let tb, rb, cb = alloc "b" (Policies.fifo_second_chance ()) in
      let manager = Api.manager sys in
      let touch task region page =
        try
          Kernel.access_vpn k task
            ~vpn:(region.Vm_map.start_vpn + page)
            ~write:(page mod 2 = 0)
        with Kernel.Task_terminated _ -> ()
      in
      List.iter
        (fun (op, page) ->
          match op with
          | 0 -> touch ta ra page
          | 1 -> touch tb rb page
          | 2 ->
              if not (Container.degraded ca || Container.degraded cb) then
                ignore (Api.migrate_frames sys ~src:ca ~dst:cb ~n:2)
          | 3 ->
              if not (Container.degraded ca || Container.degraded cb) then
                ignore (Api.migrate_frames sys ~src:cb ~dst:ca ~n:2)
          | 4 -> Frame_manager.demote manager ca ~reason:"chaos property"
          | _ -> Frame_manager.demote manager cb ~reason:"chaos property")
        ops;
      Kernel.drain_io k;
      let auditor = Audit.create ~raise_on_violation:false k in
      List.iter
        (fun c ->
          Audit.register_queue auditor (Container.free_queue c);
          Audit.register_queue auditor (Container.active_queue c);
          Audit.register_queue auditor (Container.inactive_queue c))
        [ ca; cb ];
      Frame.Table.check_conservation (Kernel.frame_table k)
      && Audit.sweep auditor = [])

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "chaos"
    [
      ( "io_retry",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "transient write storm" `Quick test_transient_write_storm;
          Alcotest.test_case "bad block write remaps" `Quick test_bad_block_write_remaps;
          Alcotest.test_case "bad block without remap gives up" `Quick
            test_bad_block_write_without_remap_gives_up;
          Alcotest.test_case "sync read retries transients" `Quick
            test_sync_read_transient_retries;
          Alcotest.test_case "sync read gives up on bad block" `Quick
            test_sync_read_bad_block_gives_up_immediately;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean kernel" `Quick test_audit_clean_kernel;
          Alcotest.test_case "detects planted corruption" `Quick
            test_audit_detects_free_frame_on_queue;
        ] );
      ( "scenario",
        [ Alcotest.test_case "tiny chaos run healthy" `Quick test_chaos_tiny_healthy ] );
      ( "properties",
        qc
          [
            prop_chaos_deterministic;
            prop_conservation_under_demote_migrate_faults;
          ] );
    ]
