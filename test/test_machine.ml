(* Tests for the machine substrate: frames, pmap, disk, costs. *)

open Hipec_machine
module T = Hipec_sim.Sim_time
module Engine = Hipec_sim.Engine
module Rng = Hipec_sim.Rng

(* ------------------------------------------------------------------ *)
(* Frame / Frame.Table                                                 *)
(* ------------------------------------------------------------------ *)

let test_frame_table_alloc_free () =
  let tbl = Frame.Table.create ~total:8 in
  Alcotest.(check int) "all free" 8 (Frame.Table.free_count tbl);
  let f = match Frame.Table.alloc tbl with Some f -> f | None -> Alcotest.fail "alloc" in
  Alcotest.(check bool) "not free" false (Frame.is_free f);
  Alcotest.(check int) "seven left" 7 (Frame.Table.free_count tbl);
  Frame.Table.free tbl f;
  Alcotest.(check bool) "free again" true (Frame.is_free f);
  Alcotest.(check int) "back to eight" 8 (Frame.Table.free_count tbl);
  Alcotest.(check bool) "conserved" true (Frame.Table.check_conservation tbl)

let test_frame_table_exhaustion () =
  let tbl = Frame.Table.create ~total:3 in
  let fs = Frame.Table.alloc_many tbl 5 in
  Alcotest.(check int) "only three granted" 3 (List.length fs);
  Alcotest.(check int) "pool dry" 0 (Frame.Table.free_count tbl);
  Alcotest.(check bool) "alloc fails" true (Frame.Table.alloc tbl = None)

let test_frame_alloc_clears_bits () =
  let tbl = Frame.Table.create ~total:1 in
  let f = Option.get (Frame.Table.alloc tbl) in
  Frame.set_referenced f true;
  Frame.set_modified f true;
  Frame.Table.free tbl f;
  let f = Option.get (Frame.Table.alloc tbl) in
  Alcotest.(check bool) "ref cleared" false (Frame.referenced f);
  Alcotest.(check bool) "mod cleared" false (Frame.modified f)

let test_frame_double_free_rejected () =
  let tbl = Frame.Table.create ~total:1 in
  let f = Option.get (Frame.Table.alloc tbl) in
  Frame.Table.free tbl f;
  Alcotest.check_raises "double free" (Invalid_argument "Frame.Table.free: already free")
    (fun () -> Frame.Table.free tbl f)

let test_frame_wired_free_rejected () =
  let tbl = Frame.Table.create ~total:1 in
  let f = Option.get (Frame.Table.alloc tbl) in
  Frame.set_wired f true;
  Alcotest.check_raises "wired free" (Invalid_argument "Frame.Table.free: frame is wired")
    (fun () -> Frame.Table.free tbl f)

(* ------------------------------------------------------------------ *)
(* Pmap                                                                *)
(* ------------------------------------------------------------------ *)

let with_frame k =
  let tbl = Frame.Table.create ~total:4 in
  k tbl (Option.get (Frame.Table.alloc tbl))

let test_pmap_miss_then_hit () =
  with_frame (fun _tbl f ->
      let pm = Pmap.create () in
      (match Pmap.access pm ~vpn:5 ~write:false with
      | Pmap.Miss -> ()
      | _ -> Alcotest.fail "expected miss");
      Pmap.enter pm ~vpn:5 ~frame:f ~prot:Pmap.Read_write;
      match Pmap.access pm ~vpn:5 ~write:false with
      | Pmap.Hit f' -> Alcotest.(check int) "same frame" (Frame.index f) (Frame.index f')
      | _ -> Alcotest.fail "expected hit")

let test_pmap_sets_hardware_bits () =
  with_frame (fun _tbl f ->
      let pm = Pmap.create () in
      Pmap.enter pm ~vpn:1 ~frame:f ~prot:Pmap.Read_write;
      ignore (Pmap.access pm ~vpn:1 ~write:false);
      Alcotest.(check bool) "ref set" true (Frame.referenced f);
      Alcotest.(check bool) "mod clear" false (Frame.modified f);
      ignore (Pmap.access pm ~vpn:1 ~write:true);
      Alcotest.(check bool) "mod set" true (Frame.modified f))

let test_pmap_protection () =
  with_frame (fun _tbl f ->
      let pm = Pmap.create () in
      Pmap.enter pm ~vpn:2 ~frame:f ~prot:Pmap.Read_only;
      (match Pmap.access pm ~vpn:2 ~write:true with
      | Pmap.Protection_violation _ -> ()
      | _ -> Alcotest.fail "expected protection violation");
      (* reads are fine *)
      (match Pmap.access pm ~vpn:2 ~write:false with
      | Pmap.Hit _ -> ()
      | _ -> Alcotest.fail "expected read hit");
      Pmap.protect pm ~vpn:2 ~prot:Pmap.Read_write;
      match Pmap.access pm ~vpn:2 ~write:true with
      | Pmap.Hit _ -> ()
      | _ -> Alcotest.fail "expected hit after protect")

let test_pmap_remove () =
  with_frame (fun _tbl f ->
      let pm = Pmap.create () in
      Pmap.enter pm ~vpn:3 ~frame:f ~prot:Pmap.Read_write;
      Alcotest.(check int) "resident" 1 (Pmap.resident_count pm);
      Pmap.remove pm ~vpn:3;
      Alcotest.(check int) "gone" 0 (Pmap.resident_count pm);
      match Pmap.access pm ~vpn:3 ~write:false with
      | Pmap.Miss -> ()
      | _ -> Alcotest.fail "expected miss after remove")

let test_pmap_va_conversion () =
  Alcotest.(check int) "vpn" 3 (Pmap.vpn_of_va (3 * 4096 + 123));
  Alcotest.(check int) "va" (3 * 4096) (Pmap.va_of_vpn 3)

(* ------------------------------------------------------------------ *)
(* Disk                                                                *)
(* ------------------------------------------------------------------ *)

let make_disk ?params () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:77 in
  let disk = Disk.create ?params ~engine ~rng () in
  (engine, disk)

let test_disk_read_completes () =
  let engine, disk = make_disk () in
  let done_at = ref T.zero in
  Disk.submit_read disk ~block:1000 ~nblocks:8 (fun e r ->
      Alcotest.(check bool) "clean read succeeds" true (Result.is_ok r);
      done_at := Engine.now e);
  Engine.run engine;
  Alcotest.(check bool) "took positive time" true T.(!done_at > T.zero);
  Alcotest.(check int) "one read" 1 (Disk.reads_completed disk);
  Alcotest.(check int) "no writes" 0 (Disk.writes_completed disk)

let test_disk_fifo_order () =
  let engine, disk = make_disk () in
  let order = ref [] in
  Disk.submit_read disk ~block:0 ~nblocks:1 (fun _ _ -> order := 1 :: !order);
  Disk.submit_read disk ~block:100_000 ~nblocks:1 (fun _ _ -> order := 2 :: !order);
  Disk.submit_write disk ~block:5_000 ~nblocks:1 (fun _ _ -> order := 3 :: !order);
  Engine.run engine;
  Alcotest.(check (list int)) "completion order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check int) "queue drained" 0 (Disk.queue_depth disk)

let test_disk_mean_page_read_latency () =
  (* Calibration guard: a scattered 4 KB read must average ~7.65 ms so
     that Table 3's with-I/O row reproduces (see DESIGN.md section 5). *)
  let _, disk = make_disk () in
  let rng = Rng.create ~seed:5 in
  let n = 5_000 in
  let total = ref 0. in
  for _ = 1 to n do
    let block = Rng.int rng (Disk.capacity_blocks disk - 8) in
    total := !total +. T.to_ms_f (Disk.service_time disk ~block ~nblocks:8)
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f ms within [7.0, 8.3]" mean)
    true
    (mean > 7.0 && mean < 8.3)

let test_disk_sequential_faster_than_random () =
  let _, disk = make_disk () in
  let rng = Rng.create ~seed:6 in
  let seq = ref 0. and rand = ref 0. in
  let n = 2_000 in
  for i = 0 to n - 1 do
    seq := !seq +. T.to_ms_f (Disk.service_time disk ~block:(i * 8) ~nblocks:8)
  done;
  for _ = 1 to n do
    let block = Rng.int rng (Disk.capacity_blocks disk - 8) in
    rand := !rand +. T.to_ms_f (Disk.service_time disk ~block ~nblocks:8)
  done;
  Alcotest.(check bool) "sequential beats random" true (!seq < !rand)

let test_disk_extent_checks () =
  let _, disk = make_disk () in
  Alcotest.check_raises "negative block" (Invalid_argument "Disk: extent out of range")
    (fun () -> ignore (Disk.service_time disk ~block:(-1) ~nblocks:1));
  Alcotest.check_raises "past end" (Invalid_argument "Disk: extent out of range") (fun () ->
      ignore (Disk.service_time disk ~block:(Disk.capacity_blocks disk) ~nblocks:1));
  Alcotest.check_raises "zero blocks" (Invalid_argument "Disk: nblocks <= 0") (fun () ->
      ignore (Disk.service_time disk ~block:0 ~nblocks:0))

let test_disk_busy_time_accumulates () =
  let engine, disk = make_disk () in
  Disk.submit_read disk ~block:0 ~nblocks:8 (fun _ _ -> ());
  Disk.submit_read disk ~block:999 ~nblocks:8 (fun _ _ -> ());
  Engine.run engine;
  Alcotest.(check bool) "busy time positive" true T.(Disk.busy_time disk > T.zero);
  (* the engine clock must have reached at least the total busy time *)
  Alcotest.(check bool) "clock >= busy" true
    T.(Engine.now engine >= Disk.busy_time disk)

(* ------------------------------------------------------------------ *)
(* Disk fault injection                                                *)
(* ------------------------------------------------------------------ *)

let faults_cfg ?(seed = 42) ?(read = 0.) ?(write = 0.) ?(spike = 0.) ?(bad = []) () =
  {
    Disk.Faults.seed;
    transient_read_rate = read;
    transient_write_rate = write;
    latency_spike_rate = spike;
    latency_spike = T.ms 20;
    bad_blocks = bad;
  }

let test_disk_out_of_range_is_error_not_raise () =
  let engine, disk = make_disk () in
  let got = ref None in
  Disk.submit_read disk ~block:(Disk.capacity_blocks disk) ~nblocks:8 (fun _ r ->
      got := Some r);
  Engine.run engine;
  (match !got with
  | Some (Error (Disk.Out_of_range _)) -> ()
  | Some (Ok ()) -> Alcotest.fail "out-of-range read reported success"
  | Some (Error e) -> Alcotest.fail ("wrong error: " ^ Disk.io_error_to_string e)
  | None -> Alcotest.fail "completion never delivered");
  Alcotest.(check int) "not counted as a completed read" 0 (Disk.reads_completed disk);
  let _, sync = Disk.sync_transfer disk ~is_write:false ~block:(-1) ~nblocks:1 in
  match sync with
  | Error (Disk.Out_of_range _) -> ()
  | _ -> Alcotest.fail "sync out-of-range not reported"

let test_disk_transient_faults_counted () =
  let engine, disk = make_disk () in
  Disk.set_faults disk (faults_cfg ~read:0.2 ());
  let errors = ref 0 and oks = ref 0 in
  for i = 0 to 199 do
    Disk.submit_read disk ~block:(i * 8) ~nblocks:8 (fun _ r ->
        match r with Ok () -> incr oks | Error _ -> incr errors)
  done;
  Engine.run engine;
  Alcotest.(check int) "all delivered" 200 (!oks + !errors);
  Alcotest.(check int) "counter matches" !errors (Disk.faults_injected disk);
  Alcotest.(check bool) "some faults at 20%" true (!errors > 10);
  Alcotest.(check bool) "not all faults" true (!oks > 100)

let test_disk_bad_block_hits_every_time () =
  let engine, disk = make_disk () in
  Disk.set_faults disk (faults_cfg ~bad:[ 804 ] ());
  let results = ref [] in
  for _ = 1 to 3 do
    (* the extent 800..807 covers the bad block *)
    Disk.submit_write disk ~block:800 ~nblocks:8 (fun _ r -> results := r :: !results)
  done;
  Disk.submit_read disk ~block:808 ~nblocks:8 (fun _ r -> results := r :: !results);
  Engine.run engine;
  let bad, ok =
    List.partition (function Error (Disk.Bad_block _) -> true | _ -> false) !results
  in
  Alcotest.(check int) "every covering transfer fails" 3 (List.length bad);
  Alcotest.(check int) "neighbour extent is clean" 1 (List.length ok);
  Alcotest.(check int) "hits counted" 3 (Disk.bad_block_hits disk)

let test_disk_faults_deterministic_and_isolated () =
  (* same seed -> identical outcome sequence; and a zero-rate fault
     config must be bit-identical to the fault-free disk *)
  let outcomes cfg =
    let engine, disk = make_disk () in
    Option.iter (Disk.set_faults disk) cfg;
    let rng = Rng.create ~seed:9 in
    let log = ref [] in
    for _ = 1 to 100 do
      let block = Rng.int rng (Disk.capacity_blocks disk - 8) in
      Disk.submit_read disk ~block ~nblocks:8 (fun e r ->
          log := (T.to_ns (Engine.now e), Result.is_ok r) :: !log)
    done;
    Engine.run engine;
    List.rev !log
  in
  let cfg = Some (faults_cfg ~read:0.1 ~spike:0.1 ()) in
  Alcotest.(check bool) "same seed, same run" true (outcomes cfg = outcomes cfg);
  Alcotest.(check bool)
    "zero rates behave exactly like the fault-free model" true
    (outcomes None = outcomes (Some (faults_cfg ())))

(* ------------------------------------------------------------------ *)
(* Costs                                                               *)
(* ------------------------------------------------------------------ *)

let test_costs_calibration_table4 () =
  let c = Costs.default in
  Alcotest.(check int) "null syscall 19us" 19_000 (T.to_ns c.Costs.null_syscall);
  Alcotest.(check int) "null ipc 292us" 292_000 (T.to_ns c.Costs.null_ipc);
  (* the 3-command HiPEC fast path: Comp, DeQueue, Return ~ 150ns *)
  Alcotest.(check int) "fast path 150ns" 150
    (3 * T.to_ns c.Costs.hipec_fetch_decode)

let test_costs_calibration_table3 () =
  let c = Costs.default in
  let fault_us = T.to_us_f (T.add c.Costs.fault_trap c.Costs.fault_service) in
  Alcotest.(check bool)
    (Printf.sprintf "fault %.1f us near 392" fault_us)
    true
    (fault_us > 380. && fault_us < 400.);
  let hipec_extra =
    T.to_us_f
      (T.add c.Costs.hipec_dispatch
         (T.add c.Costs.hipec_frame_bookkeeping c.Costs.hipec_region_check))
  in
  (* target ~7 us -> 1.8 % of 392 us *)
  Alcotest.(check bool)
    (Printf.sprintf "hipec extra %.2f us near 7" hipec_extra)
    true
    (hipec_extra > 5.5 && hipec_extra < 8.5)

let test_costs_scale () =
  let c = Costs.scale Costs.default 2.0 in
  Alcotest.(check int) "scaled syscall" 38_000 (T.to_ns c.Costs.null_syscall);
  let z = Costs.scale Costs.default 0. in
  Alcotest.(check int) "zeroed" 0 (T.to_ns z.Costs.fault_trap)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_frame_table_conservation =
  QCheck.Test.make ~name:"frame table conserves frames" ~count:200
    QCheck.(list (int_bound 2))
    (fun ops ->
      let tbl = Frame.Table.create ~total:16 in
      let held = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 -> ( match Frame.Table.alloc tbl with Some f -> held := f :: !held | None -> ())
          | 1 -> (
              match !held with
              | f :: rest ->
                  Frame.Table.free tbl f;
                  held := rest
              | [] -> ())
          | _ ->
              let fs = Frame.Table.alloc_many tbl 3 in
              held := fs @ !held)
        ops;
      Frame.Table.check_conservation tbl
      && Frame.Table.free_count tbl + List.length !held = 16)

let prop_pmap_access_matches_lookup =
  QCheck.Test.make ~name:"pmap access consistent with lookup" ~count:200
    QCheck.(list (pair (int_bound 32) bool))
    (fun refs ->
      let tbl = Frame.Table.create ~total:64 in
      let pm = Pmap.create () in
      List.for_all
        (fun (vpn, write) ->
          match (Pmap.lookup pm ~vpn, Pmap.access pm ~vpn ~write) with
          | None, Pmap.Miss ->
              (* install on miss, like a fault handler would *)
              (match Frame.Table.alloc tbl with
              | Some f -> Pmap.enter pm ~vpn ~frame:f ~prot:Pmap.Read_write
              | None -> ());
              true
          | Some _, Pmap.Hit _ -> true
          | _ -> false)
        refs)

(* The pmap's hardware ref/modify-bit emulation against a pure model:
   random enter/access/remove/protect sequences, then every frame's bits
   must match what the model accumulated.  Bits persist across [remove]
   (Mach keeps them per physical page) and are cleared by [alloc]. *)
let prop_pmap_refmod_model =
  QCheck.Test.make ~name:"pmap ref/modify emulation matches a pure model" ~count:300
    QCheck.(list (pair (int_bound 3) (pair (int_bound 7) bool)))
    (fun ops ->
      let tbl = Frame.Table.create ~total:16 in
      let pm = Pmap.create () in
      let frames = Hashtbl.create 8 in
      (* vpn -> (writable, referenced, modified) *)
      let model : (int, bool ref * bool ref * bool ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (op, (vpn, flag)) ->
          match op with
          | 0 ->
              if not (Hashtbl.mem frames vpn) then (
                match Frame.Table.alloc tbl with
                | None -> ()
                | Some f ->
                    Pmap.enter pm ~vpn ~frame:f
                      ~prot:(if flag then Pmap.Read_write else Pmap.Read_only);
                    Hashtbl.replace frames vpn f;
                    Hashtbl.replace model vpn (ref flag, ref false, ref false))
          | 1 -> (
              let result = Pmap.access pm ~vpn ~write:flag in
              match (Pmap.lookup pm ~vpn, result) with
              | None, Pmap.Miss -> ()
              | None, _ | Some _, Pmap.Miss ->
                  QCheck.Test.fail_report "access disagrees with lookup"
              | Some _, result -> (
                  let rw, r, m = Hashtbl.find model vpn in
                  match result with
                  | Pmap.Protection_violation _ ->
                      if !rw || not flag then
                        QCheck.Test.fail_report "unexpected protection violation"
                  | Pmap.Hit _ ->
                      if flag && not !rw then
                        QCheck.Test.fail_report "write hit on a read-only mapping";
                      r := true;
                      if flag then m := true
                  | Pmap.Miss -> assert false))
          | 2 -> Pmap.remove pm ~vpn
          | _ ->
              if Pmap.lookup pm ~vpn <> None then begin
                Pmap.protect pm ~vpn ~prot:(if flag then Pmap.Read_write else Pmap.Read_only);
                let rw, _, _ = Hashtbl.find model vpn in
                rw := flag
              end)
        ops;
      Hashtbl.fold
        (fun vpn f acc ->
          let _, r, m = Hashtbl.find model vpn in
          acc && Frame.referenced f = !r && Frame.modified f = !m)
        frames true)

(* Frame-table grant invariants: a held frame is never granted again,
   the free count plus the held set always conserves the total, and
   nothing held is ever marked free. *)
let prop_frame_no_double_grant =
  QCheck.Test.make ~name:"frame table never double-grants a held frame" ~count:300
    QCheck.(list (int_bound 3))
    (fun ops ->
      let total = 12 in
      let tbl = Frame.Table.create ~total in
      let held = Hashtbl.create 16 in
      let ok = ref true in
      let grant f =
        if Hashtbl.mem held (Frame.index f) then ok := false
        else Hashtbl.replace held (Frame.index f) f
      in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 -> Option.iter grant (Frame.Table.alloc tbl)
          | 2 -> List.iter grant (Frame.Table.alloc_many tbl 2)
          | _ -> (
              match Hashtbl.fold (fun i f _ -> Some (i, f)) held None with
              | None -> ()
              | Some (i, f) ->
                  Frame.Table.free tbl f;
                  Hashtbl.remove held i))
        ops;
      !ok
      && Frame.Table.check_conservation tbl
      && Frame.Table.free_count tbl + Hashtbl.length held = total
      && Hashtbl.fold (fun _ f acc -> acc && not (Frame.is_free f)) held true)

let prop_disk_service_time_positive =
  QCheck.Test.make ~name:"disk service time positive and bounded" ~count:300
    QCheck.(pair (int_bound 511_000) (int_range 1 64))
    (fun (block, nblocks) ->
      let _, disk = make_disk () in
      let block = min block (Disk.capacity_blocks disk - nblocks) in
      let d = Disk.service_time disk ~block ~nblocks in
      T.(d > T.zero) && T.to_ms_f d < 100.)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "machine"
    [
      ( "frame",
        [
          Alcotest.test_case "alloc/free" `Quick test_frame_table_alloc_free;
          Alcotest.test_case "exhaustion" `Quick test_frame_table_exhaustion;
          Alcotest.test_case "alloc clears bits" `Quick test_frame_alloc_clears_bits;
          Alcotest.test_case "double free rejected" `Quick test_frame_double_free_rejected;
          Alcotest.test_case "wired free rejected" `Quick test_frame_wired_free_rejected;
        ] );
      ( "pmap",
        [
          Alcotest.test_case "miss then hit" `Quick test_pmap_miss_then_hit;
          Alcotest.test_case "hardware bits" `Quick test_pmap_sets_hardware_bits;
          Alcotest.test_case "protection" `Quick test_pmap_protection;
          Alcotest.test_case "remove" `Quick test_pmap_remove;
          Alcotest.test_case "va conversion" `Quick test_pmap_va_conversion;
        ] );
      ( "disk",
        [
          Alcotest.test_case "read completes" `Quick test_disk_read_completes;
          Alcotest.test_case "fifo order" `Quick test_disk_fifo_order;
          Alcotest.test_case "mean page read latency" `Quick test_disk_mean_page_read_latency;
          Alcotest.test_case "sequential < random" `Quick test_disk_sequential_faster_than_random;
          Alcotest.test_case "extent checks" `Quick test_disk_extent_checks;
          Alcotest.test_case "busy time" `Quick test_disk_busy_time_accumulates;
          Alcotest.test_case "out-of-range is a typed error" `Quick
            test_disk_out_of_range_is_error_not_raise;
          Alcotest.test_case "transient faults counted" `Quick
            test_disk_transient_faults_counted;
          Alcotest.test_case "bad blocks persistent" `Quick
            test_disk_bad_block_hits_every_time;
          Alcotest.test_case "fault model deterministic+isolated" `Quick
            test_disk_faults_deterministic_and_isolated;
        ] );
      ( "costs",
        [
          Alcotest.test_case "table 4 calibration" `Quick test_costs_calibration_table4;
          Alcotest.test_case "table 3 calibration" `Quick test_costs_calibration_table3;
          Alcotest.test_case "scale" `Quick test_costs_scale;
        ] );
      ( "properties",
        qc
          [
            prop_frame_table_conservation;
            prop_pmap_access_matches_lookup;
            prop_pmap_refmod_model;
            prop_frame_no_double_grant;
            prop_disk_service_time_positive;
          ] );
    ]
