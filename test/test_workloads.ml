(* Tests for the workload layer: trace generators, the nested-loop join
   (Figure 6), the AIM-style throughput benchmark (Figure 5), and the
   Table 3/4 drivers. *)

open Hipec_workloads
open Hipec_vm
module T = Hipec_sim.Sim_time
module Rng = Hipec_sim.Rng

(* ------------------------------------------------------------------ *)
(* Access traces                                                       *)
(* ------------------------------------------------------------------ *)

let test_trace_shapes () =
  let seq = Access_trace.sequential ~npages:5 ~write:false in
  Alcotest.(check (list int)) "sequential" [ 0; 1; 2; 3; 4 ]
    (Array.to_list (Array.map (fun a -> a.Access_trace.page) seq));
  let cyc = Access_trace.cyclic ~npages:3 ~loops:2 ~write:true in
  Alcotest.(check (list int)) "cyclic" [ 0; 1; 2; 0; 1; 2 ]
    (Array.to_list (Array.map (fun a -> a.Access_trace.page) cyc));
  Alcotest.(check bool) "cyclic writes" true (Array.for_all (fun a -> a.Access_trace.write) cyc);
  let str = Access_trace.strided ~npages:10 ~stride:3 ~count:4 ~write:false in
  Alcotest.(check (list int)) "strided" [ 0; 3; 6; 9 ]
    (Array.to_list (Array.map (fun a -> a.Access_trace.page) str))

let test_trace_zipf_skew () =
  let rng = Rng.create ~seed:42 in
  let trace = Access_trace.zipf rng ~npages:100 ~count:20_000 ~theta:0.99 ~write_ratio:0. in
  let counts = Array.make 100 0 in
  Array.iter (fun a -> counts.(a.Access_trace.page) <- counts.(a.Access_trace.page) + 1) trace;
  Alcotest.(check bool) "page 0 is hottest" true
    (Array.for_all (fun c -> counts.(0) >= c) counts);
  Alcotest.(check bool) "head heavy" true (counts.(0) > counts.(50) * 5)

let test_trace_working_set_bounds () =
  let rng = Rng.create ~seed:9 in
  let trace =
    Access_trace.working_set_phases rng ~npages:200 ~phases:4 ~phase_len:100 ~ws_pages:20
  in
  Alcotest.(check int) "length" 400 (Array.length trace);
  Array.iter
    (fun a ->
      Alcotest.(check bool) "in range" true
        (a.Access_trace.page >= 0 && a.Access_trace.page < 200))
    trace

let test_trace_replay_counts_faults () =
  let config = { Kernel.default_config with total_frames = 64 } in
  let k = Kernel.create ~config () in
  let task = Kernel.create_task k () in
  let region = Kernel.vm_allocate k task ~npages:10 in
  let trace = Access_trace.cyclic ~npages:10 ~loops:3 ~write:false in
  let faults = Access_trace.faults_during k task region trace in
  Alcotest.(check int) "each page faults once" 10 faults

(* ------------------------------------------------------------------ *)
(* Join (Figure 6)                                                     *)
(* ------------------------------------------------------------------ *)

let test_join_formulas_match_paper () =
  (* the paper's own numbers at the default parameters *)
  let c60 = { Join.default_config with Join.outer_mb = 60 } in
  Alcotest.(check int) "PF_l at 60MB" 983_040 (Join.predicted_faults `Lru c60);
  Alcotest.(check int) "PF_m at 60MB" ((5_120 * 63) + 15_360) (Join.predicted_faults `Mru c60);
  let c40 = { Join.default_config with Join.outer_mb = 40 } in
  Alcotest.(check int) "fits: both once" (Join.predicted_faults `Lru c40)
    (Join.predicted_faults `Mru c40);
  Alcotest.(check int) "fits: once" 10_240 (Join.predicted_faults `Mru c40)

let small_join outer memory =
  {
    Join.default_config with
    Join.outer_mb = outer;
    memory_mb = memory;
    total_frames = 4_096;
  }

let test_join_lru_measured_matches_formula () =
  let c = small_join 10 6 in
  let r = Join.run Join.Kernel_default c in
  let predicted = Join.predicted_faults `Lru c in
  Alcotest.(check int) "LRU faults exactly cyclic" predicted r.Join.faults

let test_join_mru_measured_matches_formula () =
  let c = small_join 10 6 in
  let r = Join.run Join.Hipec_mru c in
  let predicted = Join.predicted_faults `Mru c in
  let diff = abs (r.Join.faults - predicted) in
  Alcotest.(check bool)
    (Printf.sprintf "MRU faults %d ~ %d" r.Join.faults predicted)
    true
    (diff * 50 <= predicted)

let test_join_mru_beats_lru_when_oversubscribed () =
  let c = small_join 10 6 in
  let lru = Join.run Join.Kernel_default c in
  let mru = Join.run Join.Hipec_mru c in
  Alcotest.(check bool) "MRU faster" true T.(mru.Join.elapsed < lru.Join.elapsed);
  Alcotest.(check bool) "at least 2x" true
    (T.to_sec_f lru.Join.elapsed /. T.to_sec_f mru.Join.elapsed > 2.0)

let test_join_no_gap_when_fits () =
  let c = small_join 4 6 in
  let lru = Join.run Join.Kernel_default c in
  let mru = Join.run Join.Hipec_mru c in
  Alcotest.(check int) "lru faults = pages" (Join.outer_pages c) lru.Join.faults;
  Alcotest.(check int) "mru faults = pages" (Join.outer_pages c) mru.Join.faults;
  let ratio = T.to_sec_f lru.Join.elapsed /. T.to_sec_f mru.Join.elapsed in
  Alcotest.(check bool)
    (Printf.sprintf "elapsed within 10%% (ratio %.3f)" ratio)
    true
    (ratio > 0.9 && ratio < 1.1)

let test_join_output_size () =
  let c = small_join 4 6 in
  let r = Join.run Join.Hipec_mru c in
  (* every outer tuple joins against every inner tuple *)
  let outer_tuples = Join.outer_pages c * (4096 / c.Join.tuple_bytes) in
  Alcotest.(check int) "output tuples" (outer_tuples * Join.loops c) r.Join.output_tuples

let test_join_gain_formula () =
  let c = small_join 10 6 in
  let gain = Join.predicted_gain c (T.of_ms_f 8.0) in
  Alcotest.(check bool) "gain positive" true T.(gain > T.zero);
  let c_fits = small_join 4 6 in
  Alcotest.(check int) "no gain when resident" 0
    (T.to_ns (Join.predicted_gain c_fits (T.of_ms_f 8.0)))

(* ------------------------------------------------------------------ *)
(* AIM (Figure 5)                                                      *)
(* ------------------------------------------------------------------ *)

let aim_cfg ?(users = 2) ?(mix = Aim.Standard) ?(hipec = false) () =
  {
    Aim.default_config with
    Aim.users;
    mix;
    hipec_kernel = hipec;
    duration = T.sec 20;
  }

let test_aim_completes_jobs () =
  let r = Aim.run (aim_cfg ()) in
  Alcotest.(check bool) "jobs done" true (r.Aim.jobs_completed > 0);
  Alcotest.(check bool) "throughput positive" true (r.Aim.jobs_per_minute > 0.);
  Alcotest.(check bool) "cpu was busy" true T.(r.Aim.cpu_busy > T.zero);
  Alcotest.(check bool) "disk was busy" true T.(r.Aim.disk_busy > T.zero)

let test_aim_deterministic () =
  let a = Aim.run (aim_cfg ()) in
  let b = Aim.run (aim_cfg ()) in
  Alcotest.(check int) "same jobs" a.Aim.jobs_completed b.Aim.jobs_completed;
  Alcotest.(check int) "same faults" a.Aim.faults b.Aim.faults

let test_aim_multiprogramming_raises_throughput () =
  let one = Aim.run (aim_cfg ~users:1 ()) in
  let four = Aim.run (aim_cfg ~users:4 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "4 users (%.0f) beat 1 (%.0f)" four.Aim.jobs_per_minute
       one.Aim.jobs_per_minute)
    true
    (four.Aim.jobs_per_minute > one.Aim.jobs_per_minute *. 1.2)

let test_aim_oversubscription_degrades () =
  let peak = Aim.run (aim_cfg ~users:4 ~mix:Aim.Memory_heavy ()) in
  let crowded = Aim.run (aim_cfg ~users:14 ~mix:Aim.Memory_heavy ()) in
  Alcotest.(check bool) "paging at 14 users" true (crowded.Aim.faults > peak.Aim.faults * 2);
  Alcotest.(check bool)
    (Printf.sprintf "throughput degraded (%.0f -> %.0f)" peak.Aim.jobs_per_minute
       crowded.Aim.jobs_per_minute)
    true
    (crowded.Aim.jobs_per_minute < peak.Aim.jobs_per_minute)

let test_aim_specific_users_protected () =
  (* beyond the paper: under heavy memory pressure, users that manage
     their own private frame list keep their throughput while
     non-specific users thrash *)
  let cfg =
    {
      Aim.default_config with
      Aim.users = 10;
      mix = Aim.Memory_heavy;
      duration = T.sec 20;
      hipec_kernel = true;
      specific_users = 3;
    }
  in
  let r = Aim.run cfg in
  let specific_rate = float_of_int r.Aim.specific_jobs_completed /. 3. in
  let other_rate = float_of_int (r.Aim.jobs_completed - r.Aim.specific_jobs_completed) /. 7. in
  Alcotest.(check bool) "everyone made progress" true
    (r.Aim.specific_jobs_completed > 0
    && r.Aim.jobs_completed > r.Aim.specific_jobs_completed);
  Alcotest.(check bool)
    (Printf.sprintf "specific users ahead per capita (%.1f vs %.1f)" specific_rate
       other_rate)
    true
    (specific_rate > other_rate *. 1.2)

let test_aim_specific_requires_hipec_kernel () =
  let cfg = { Aim.default_config with Aim.users = 2; specific_users = 1 } in
  Alcotest.check_raises "guard"
    (Invalid_argument "Aim.run: specific users need the HiPEC kernel") (fun () ->
      ignore (Aim.run cfg))

let test_aim_hipec_kernel_equivalent () =
  (* Figure 5's claim: the modified kernel's throughput matches *)
  List.iter
    (fun mix ->
      let plain = Aim.run (aim_cfg ~users:6 ~mix ()) in
      let hipec = Aim.run (aim_cfg ~users:6 ~mix ~hipec:true ()) in
      let delta =
        abs_float (plain.Aim.jobs_per_minute -. hipec.Aim.jobs_per_minute)
        /. plain.Aim.jobs_per_minute
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s mix within 2%% (%.3f)" (Aim.mix_name mix) delta)
        true (delta < 0.02))
    [ Aim.Standard; Aim.Disk_heavy; Aim.Memory_heavy ]

(* ------------------------------------------------------------------ *)
(* Tables 3 and 4                                                      *)
(* ------------------------------------------------------------------ *)

let test_table3_no_io_shape () =
  let mach = Driver.table3_run ~pages:2048 Driver.Mach ~with_disk_io:false in
  let hipec = Driver.table3_run ~pages:2048 Driver.Hipec ~with_disk_io:false in
  Alcotest.(check int) "mach faults" 2048 mach.Driver.faults;
  Alcotest.(check int) "hipec faults" 2048 hipec.Driver.faults;
  let overhead = Driver.overhead_percent ~baseline:mach ~subject:hipec in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.2f%% in [1, 3]" overhead)
    true
    (overhead > 1.0 && overhead < 3.0)

let test_table3_io_drowns_overhead () =
  let mach = Driver.table3_run ~pages:2048 Driver.Mach ~with_disk_io:true in
  let hipec = Driver.table3_run ~pages:2048 Driver.Hipec ~with_disk_io:true in
  let overhead = Driver.overhead_percent ~baseline:mach ~subject:hipec in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.3f%% < 0.5%%" overhead)
    true
    (overhead >= 0.0 && overhead < 0.5);
  (* with I/O the run is an order of magnitude slower *)
  let no_io = Driver.table3_run ~pages:2048 Driver.Mach ~with_disk_io:false in
  Alcotest.(check bool) "io dominates" true
    (T.to_ms_f mach.Driver.elapsed > 5. *. T.to_ms_f no_io.Driver.elapsed)

let test_table4_values () =
  let t4 = Driver.table4_run () in
  Alcotest.(check int) "syscall 19us" 19_000 (T.to_ns t4.Driver.null_syscall);
  Alcotest.(check int) "ipc 292us" 292_000 (T.to_ns t4.Driver.null_ipc);
  Alcotest.(check int) "3-command fast path" 3 t4.Driver.fast_path_commands;
  Alcotest.(check int) "150ns" 150 (T.to_ns t4.Driver.hipec_fast_path);
  (* the ordering claim of Table 4 *)
  Alcotest.(check bool) "fast path << syscall << ipc" true
    T.(t4.Driver.hipec_fast_path < t4.Driver.null_syscall
      && t4.Driver.null_syscall < t4.Driver.null_ipc)

let test_trace_record_roundtrip () =
  (* recording a replay reproduces the trace (modulo the TLB-style
     dedup of consecutive identical references) *)
  let config = { Kernel.default_config with total_frames = 256 } in
  let k = Kernel.create ~config () in
  let task = Kernel.create_task k () in
  let region = Kernel.vm_allocate k task ~npages:20 in
  let original = Access_trace.cyclic ~npages:20 ~loops:2 ~write:false in
  let (), recorded =
    Access_trace.record k task region (fun () ->
        Access_trace.replay k task region original)
  in
  Alcotest.(check int) "same length" (Array.length original) (Array.length recorded);
  Alcotest.(check bool) "same pages" true
    (Array.for_all2
       (fun a b -> a.Access_trace.page = b.Access_trace.page)
       original recorded);
  (* and advising on the recording picks MRU, as for the raw trace *)
  Alcotest.(check string) "advice from real behaviour" "MRU"
    (Policy_sim.policy_name (Policy_sim.advise ~frames:10 recorded))

let test_trace_record_filters_other_regions () =
  let config = { Kernel.default_config with total_frames = 256 } in
  let k = Kernel.create ~config () in
  let task = Kernel.create_task k () in
  let watched = Kernel.vm_allocate k task ~npages:10 in
  let other = Kernel.vm_allocate k task ~npages:10 in
  let (), recorded =
    Access_trace.record k task watched (fun () ->
        Kernel.touch_region k task other ~write:false;
        Kernel.access_vpn k task ~vpn:watched.Vm_map.start_vpn ~write:true)
  in
  Alcotest.(check int) "only the watched reference" 1 (Array.length recorded);
  Alcotest.(check bool) "write recorded" true recorded.(0).Access_trace.write

(* ------------------------------------------------------------------ *)
(* Offline policy simulation (Policy_sim)                              *)
(* ------------------------------------------------------------------ *)

let test_policy_sim_cyclic_shapes () =
  (* the textbook results on a cyclic scan larger than memory *)
  let trace = Access_trace.cyclic ~npages:10 ~loops:5 ~write:false in
  Alcotest.(check int) "LRU thrashes" 50 (Policy_sim.faults Policy_sim.Lru ~frames:6 trace);
  Alcotest.(check int) "FIFO thrashes" 50 (Policy_sim.faults Policy_sim.Fifo ~frames:6 trace);
  (* ideal MRU keeps a stable prefix (and one wrapped survivor), far
     below the thrashing policies; on a pure cycle it equals OPT *)
  let mru = Policy_sim.faults Policy_sim.Mru ~frames:6 trace in
  Alcotest.(check int) "MRU keeps a prefix" 26 mru;
  Alcotest.(check int) "OPT = MRU on a cycle" mru
    (Policy_sim.faults Policy_sim.Opt ~frames:6 trace)

let test_policy_sim_fits_in_memory () =
  let trace = Access_trace.cyclic ~npages:8 ~loops:4 ~write:false in
  List.iter
    (fun p ->
      Alcotest.(check int) (Policy_sim.policy_name p) 8
        (Policy_sim.faults p ~frames:8 trace))
    Policy_sim.all_policies

let test_policy_sim_advise () =
  let cyclic = Access_trace.cyclic ~npages:20 ~loops:4 ~write:false in
  Alcotest.(check string) "cyclic wants MRU" "MRU"
    (Policy_sim.policy_name (Policy_sim.advise ~frames:10 cyclic));
  let rng = Rng.create ~seed:4 in
  let zipf = Access_trace.zipf rng ~npages:100 ~count:2_000 ~theta:1.1 ~write_ratio:0. in
  let advice = Policy_sim.advise ~frames:20 zipf in
  Alcotest.(check bool)
    (Printf.sprintf "skewed wants recency (%s)" (Policy_sim.policy_name advice))
    true
    (advice = Policy_sim.Lru || advice = Policy_sim.Clock)

let test_policy_sim_matches_live_kernel () =
  (* the offline model and the live HiPEC policies agree exactly *)
  let npages = 40 and frames = 16 in
  let traces =
    [
      ("cyclic", Access_trace.cyclic ~npages ~loops:3 ~write:false);
      ( "zipf",
        Access_trace.zipf (Rng.create ~seed:8) ~npages ~count:300 ~theta:0.9
          ~write_ratio:0. );
      ( "random",
        Access_trace.uniform_random (Rng.create ~seed:9) ~npages ~count:300
          ~write_ratio:0. );
    ]
  in
  let live policy trace =
    let config =
      { Kernel.default_config with Kernel.total_frames = 512; hipec_kernel = true }
    in
    let k = Kernel.create ~config () in
    let sys = Hipec_core.Api.init k in
    let task = Kernel.create_task k () in
    match
      Hipec_core.Api.vm_allocate_hipec sys task ~npages
        (Hipec_core.Api.default_spec ~policy ~min_frames:frames)
    with
    | Error e -> Alcotest.fail e
    | Ok (region, _) -> Access_trace.faults_during k task region trace
  in
  List.iter
    (fun (name, trace) ->
      Alcotest.(check int)
        (name ^ ": FIFO live = offline")
        (Policy_sim.faults Policy_sim.Fifo ~frames trace)
        (live (Hipec_core.Policies.fifo ()) trace);
      Alcotest.(check int)
        (name ^ ": LRU live = offline")
        (Policy_sim.faults Policy_sim.Lru ~frames trace)
        (live (Hipec_core.Policies.lru ()) trace);
      Alcotest.(check int)
        (name ^ ": MRU live = offline")
        (Policy_sim.faults Policy_sim.Mru ~frames trace)
        (live (Hipec_core.Policies.mru ()) trace))
    traces

let test_policy_sim_clock_matches_live () =
  (* the live CLOCK policy (simple commands rotating the active queue)
     against the offline ring model *)
  let npages = 40 and frames = 16 in
  let live trace =
    let config =
      { Kernel.default_config with Kernel.total_frames = 512; hipec_kernel = true }
    in
    let k = Kernel.create ~config () in
    let sys = Hipec_core.Api.init k in
    let task = Kernel.create_task k () in
    match
      Hipec_core.Api.vm_allocate_hipec sys task ~npages
        (Hipec_core.Api.default_spec ~policy:(Hipec_core.Policies.clock ())
           ~min_frames:frames)
    with
    | Error e -> Alcotest.fail e
    | Ok (region, _) -> Access_trace.faults_during k task region trace
  in
  List.iter
    (fun (name, trace) ->
      let offline = Policy_sim.faults Policy_sim.Clock ~frames trace in
      let measured = live trace in
      Alcotest.(check bool)
        (Printf.sprintf "%s: live %d ~ offline %d" name measured offline)
        true
        (abs (measured - offline) * 10 <= offline))
    [
      ("cyclic", Access_trace.cyclic ~npages ~loops:3 ~write:false);
      ( "zipf",
        Access_trace.zipf (Rng.create ~seed:12) ~npages ~count:400 ~theta:0.9
          ~write_ratio:0. );
    ]

let prop_opt_is_lower_bound =
  QCheck.Test.make ~name:"OPT lower-bounds every online policy" ~count:60
    QCheck.(triple (int_range 1 20) (int_range 1 40) (int_bound 10_000))
    (fun (frames, npages, seed) ->
      let rng = Rng.create ~seed in
      let trace =
        Access_trace.uniform_random rng ~npages ~count:200 ~write_ratio:0.3
      in
      let opt = Policy_sim.faults Policy_sim.Opt ~frames trace in
      List.for_all
        (fun p -> Policy_sim.faults p ~frames trace >= opt)
        [ Policy_sim.Fifo; Policy_sim.Lru; Policy_sim.Mru; Policy_sim.Clock ])

let prop_faults_bounded =
  QCheck.Test.make ~name:"fault counts within [distinct, length]" ~count:60
    QCheck.(pair (int_range 1 16) (int_bound 10_000))
    (fun (frames, seed) ->
      let rng = Rng.create ~seed in
      let trace = Access_trace.zipf rng ~npages:30 ~count:150 ~theta:0.7 ~write_ratio:0. in
      let distinct =
        Array.fold_left
          (fun acc a -> if List.mem a.Access_trace.page acc then acc else a.Access_trace.page :: acc)
          [] trace
        |> List.length
      in
      List.for_all
        (fun p ->
          let f = Policy_sim.faults p ~frames trace in
          f >= distinct && f <= Array.length trace)
        Policy_sim.all_policies)

(* ------------------------------------------------------------------ *)
(* Mechanism comparison                                                *)
(* ------------------------------------------------------------------ *)

let mech_cfg = { Mechanism.default_config with Mechanism.pages = 128; frames = 64; passes = 2 }

let test_mechanism_same_fault_behaviour () =
  (* identical policy and workload: every mechanism sees the same faults *)
  let rs =
    List.map
      (fun m -> Mechanism.run m mech_cfg)
      [ Mechanism.Hipec_interpreted; Mechanism.Upcall; Mechanism.Ipc_pager ]
  in
  match rs with
  | [ a; b; c ] ->
      Alcotest.(check int) "hipec = upcall faults" a.Mechanism.faults b.Mechanism.faults;
      Alcotest.(check int) "hipec = ipc faults" a.Mechanism.faults c.Mechanism.faults;
      Alcotest.(check bool) "replacement happened" true
        (a.Mechanism.faults > mech_cfg.Mechanism.pages)
  | _ -> Alcotest.fail "unexpected"

let test_mechanism_ordering () =
  (* the paper's Table 4 argument: interpretation < upcall << IPC *)
  let e m = T.to_ns (Mechanism.run m mech_cfg).Mechanism.elapsed in
  let hipec = e Mechanism.Hipec_interpreted in
  let upcall = e Mechanism.Upcall in
  let ipc = e Mechanism.Ipc_pager in
  Alcotest.(check bool) "hipec < upcall" true (hipec < upcall);
  Alcotest.(check bool) "upcall < ipc" true (upcall < ipc)

let test_mechanism_crossing_accounting () =
  let r = Mechanism.run Mechanism.Upcall mech_cfg in
  (* two null syscalls per decision *)
  Alcotest.(check int) "crossing time = decisions x 38us"
    (r.Mechanism.replacement_decisions * 38_000)
    (T.to_ns r.Mechanism.crossing_time)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_lru_join_always_matches_formula =
  QCheck.Test.make ~name:"join LRU fault formula" ~count:8
    QCheck.(pair (int_range 2 8) (int_range 2 8))
    (fun (outer, memory) ->
      let c =
        {
          Join.default_config with
          Join.outer_mb = outer;
          memory_mb = memory;
          inner_bytes = 512;  (* 8 scans to keep runs quick *)
          total_frames = 4_096;
        }
      in
      let r = Join.run Join.Kernel_default c in
      r.Join.faults = Join.predicted_faults `Lru c)

let prop_trace_generators_in_range =
  QCheck.Test.make ~name:"trace pages stay in range" ~count:100
    QCheck.(triple (int_range 1 50) (int_range 1 200) small_int)
    (fun (npages, count, seed) ->
      let rng = Rng.create ~seed in
      let traces =
        [
          Access_trace.uniform_random rng ~npages ~count ~write_ratio:0.5;
          Access_trace.zipf rng ~npages ~count ~theta:0.8 ~write_ratio:0.2;
        ]
      in
      List.for_all
        (Array.for_all (fun a -> a.Access_trace.page >= 0 && a.Access_trace.page < npages))
        traces)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "workloads"
    [
      ( "traces",
        [
          Alcotest.test_case "shapes" `Quick test_trace_shapes;
          Alcotest.test_case "zipf skew" `Quick test_trace_zipf_skew;
          Alcotest.test_case "working set bounds" `Quick test_trace_working_set_bounds;
          Alcotest.test_case "replay counts faults" `Quick test_trace_replay_counts_faults;
          Alcotest.test_case "record roundtrip" `Quick test_trace_record_roundtrip;
          Alcotest.test_case "record filters" `Quick test_trace_record_filters_other_regions;
        ] );
      ( "join",
        [
          Alcotest.test_case "formulas match paper" `Quick test_join_formulas_match_paper;
          Alcotest.test_case "lru measured = formula" `Quick
            test_join_lru_measured_matches_formula;
          Alcotest.test_case "mru measured ~ formula" `Quick
            test_join_mru_measured_matches_formula;
          Alcotest.test_case "mru beats lru" `Quick test_join_mru_beats_lru_when_oversubscribed;
          Alcotest.test_case "no gap when fits" `Quick test_join_no_gap_when_fits;
          Alcotest.test_case "output size" `Quick test_join_output_size;
          Alcotest.test_case "gain formula" `Quick test_join_gain_formula;
        ] );
      ( "aim",
        [
          Alcotest.test_case "completes jobs" `Quick test_aim_completes_jobs;
          Alcotest.test_case "deterministic" `Quick test_aim_deterministic;
          Alcotest.test_case "multiprogramming helps" `Quick
            test_aim_multiprogramming_raises_throughput;
          Alcotest.test_case "oversubscription degrades" `Quick
            test_aim_oversubscription_degrades;
          Alcotest.test_case "hipec kernel equivalent" `Quick test_aim_hipec_kernel_equivalent;
          Alcotest.test_case "specific users protected" `Quick
            test_aim_specific_users_protected;
          Alcotest.test_case "specific requires hipec" `Quick
            test_aim_specific_requires_hipec_kernel;
        ] );
      ( "policy_sim",
        [
          Alcotest.test_case "cyclic shapes" `Quick test_policy_sim_cyclic_shapes;
          Alcotest.test_case "fits in memory" `Quick test_policy_sim_fits_in_memory;
          Alcotest.test_case "advise" `Quick test_policy_sim_advise;
          Alcotest.test_case "matches live kernel" `Quick test_policy_sim_matches_live_kernel;
          Alcotest.test_case "clock matches live" `Quick test_policy_sim_clock_matches_live;
        ] );
      ( "mechanism",
        [
          Alcotest.test_case "same fault behaviour" `Quick test_mechanism_same_fault_behaviour;
          Alcotest.test_case "ordering" `Quick test_mechanism_ordering;
          Alcotest.test_case "crossing accounting" `Quick test_mechanism_crossing_accounting;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table 3 no io" `Quick test_table3_no_io_shape;
          Alcotest.test_case "table 3 with io" `Quick test_table3_io_drowns_overhead;
          Alcotest.test_case "table 4" `Quick test_table4_values;
        ] );
      ( "properties",
        qc
          [
            prop_lru_join_always_matches_formula;
            prop_trace_generators_in_range;
            prop_opt_is_lower_bound;
            prop_faults_bounded;
          ] );
    ]
