(* Differential tests: the HiPEC executor running the library's example
   replacement policies against the pure-functional oracles in
   Hipec_trace.Oracle, event-for-event on random access traces.

   The executor side is observed through the trace collector: every
   policy eviction funnels through the executor's make_free_slot choke
   point and is emitted as Evict{source=Policy}, and every fault the
   policy resolved as Fault{kind=Hipec}. *)

open Hipec_vm
open Hipec_core
open Hipec_trace
module Oracle = Hipec_trace.Oracle

(* Run [accesses] against a real kernel under [policy]; return the
   observable in the oracle's vocabulary. *)
let run_executor ~policy ?(extra = []) ~frames ~npages accesses =
  let c = Trace.start ~store:true () in
  let tear_down () = ignore (Trace.stop ()) in
  match
    let config =
      {
        Kernel.default_config with
        Kernel.total_frames = max 256 (4 * frames);
        hipec_kernel = true;
      }
    in
    let k = Kernel.create ~config () in
    let sys = Api.init ~start_checker:false k in
    let task = Kernel.create_task k () in
    Result.map
      (fun (region, _container) ->
        Array.iter
          (fun { Oracle.page; write } ->
            Kernel.access_vpn k task ~vpn:(region.Vm_map.start_vpn + page) ~write)
          accesses;
        Kernel.drain_io k)
      (Api.vm_allocate_hipec sys task ~npages
         { (Api.default_spec ~policy ~min_frames:frames) with Api.extra_operands = extra })
  with
  | exception e ->
      tear_down ();
      raise e
  | Error e ->
      tear_down ();
      failwith e
  | Ok () ->
      tear_down ();
      let faults = ref 0 and evictions = ref [] in
      Array.iter
        (fun ev ->
          match ev.Event.payload with
          | Event.Fault { kind = Event.Hipec; _ } -> incr faults
          | Event.Evict { source = Event.Policy; offset; dirty; _ } ->
              evictions := { Oracle.page = offset; dirty } :: !evictions
          | _ -> ())
        (Trace.events c);
      { Oracle.faults = !faults; evictions = List.rev !evictions }

let pp_eviction fmt { Oracle.page; dirty } =
  Format.fprintf fmt "%d%s" page (if dirty then "*" else "")

let pp_result fmt { Oracle.faults; evictions } =
  Format.fprintf fmt "faults=%d evictions=[%a]" faults
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp_eviction)
    evictions

let check_equal ~name (expected : Oracle.result) (actual : Oracle.result) =
  if expected <> actual then
    QCheck.Test.fail_reportf "%s diverged@.oracle:   %a@.executor: %a" name pp_result
      expected pp_result actual;
  true

let print_case (frames, npages, accesses) =
  Format.asprintf "frames=%d npages=%d trace=[%s]" frames npages
    (String.concat ","
       (List.map
          (fun { Oracle.page; write } -> Printf.sprintf "%d%s" page (if write then "w" else ""))
          (Array.to_list accesses)))

let case_gen ~fmin ~fmax st =
  let open QCheck.Gen in
  let frames = int_range fmin fmax st in
  let npages = frames + 1 + int_bound 30 st in
  let count = 50 + int_bound 250 st in
  let accesses =
    Array.init count (fun _ -> { Oracle.page = int_bound (npages - 1) st; write = bool st })
  in
  (frames, npages, accesses)

let simple_prop flavour =
  let name, policy, oracle =
    match flavour with
    | `Fifo -> ("fifo", Policies.fifo, Oracle.fifo)
    | `Lru -> ("lru", Policies.lru, Oracle.lru)
    | `Mru -> ("mru", Policies.mru, Oracle.mru)
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "executor %s matches the pure oracle" name)
    ~count:40
    (QCheck.make ~print:print_case (case_gen ~fmin:4 ~fmax:12))
    (fun (frames, npages, accesses) ->
      check_equal ~name (oracle ~frames accesses)
        (run_executor ~policy:(policy ()) ~frames ~npages accesses))

let second_chance_prop =
  QCheck.Test.make ~name:"executor second-chance matches the pure oracle" ~count:40
    (QCheck.make ~print:print_case (case_gen ~fmin:8 ~fmax:16))
    (fun (frames, npages, accesses) ->
      check_equal ~name:"second-chance"
        (Oracle.second_chance ~frames accesses)
        (run_executor ~policy:(Policies.fifo_second_chance ()) ~frames ~npages accesses))

let clock_prop =
  QCheck.Test.make ~name:"executor clock matches the pure oracle" ~count:40
    (QCheck.make ~print:print_case (case_gen ~fmin:4 ~fmax:12))
    (fun (frames, npages, accesses) ->
      check_equal ~name:"clock" (Oracle.clock ~frames accesses)
        (run_executor ~policy:(Policies.clock ()) ~frames ~npages accesses))

let adaptive_prop =
  QCheck.Test.make ~name:"executor adaptive matches the pure oracle" ~count:40
    (QCheck.make ~print:print_case (case_gen ~fmin:4 ~fmax:12))
    (fun (frames, npages, accesses) ->
      check_equal ~name:"adaptive"
        (Oracle.adaptive ~frames accesses)
        (run_executor
           ~policy:(Policies.adaptive ())
           ~extra:(Policies.adaptive_operands ())
           ~frames ~npages accesses))

(* ------------------------------------------------------------------ *)
(* Hand-worked unit cases, so a failure localizes without qcheck        *)
(* ------------------------------------------------------------------ *)

let t tr = Array.map (fun (p, w) -> { Oracle.page = p; write = w }) (Array.of_list tr)

let test_fifo_handworked () =
  (* 2 frames; 0 1 2 faults thrice, evicting 0 then 1; re-access 0
     evicts 2 *)
  let r = Oracle.fifo ~frames:2 (t [ (0, false); (1, true); (2, false); (0, false) ]) in
  Alcotest.(check int) "faults" 4 r.Oracle.faults;
  Alcotest.(check (list (pair int bool)))
    "evictions"
    [ (0, false); (1, true) ]
    (List.map (fun { Oracle.page; dirty } -> (page, dirty)) r.Oracle.evictions)

let test_lru_vs_mru_handworked () =
  let trace = t [ (0, false); (1, false); (2, false) ] in
  let lru = Oracle.lru ~frames:2 trace in
  let mru = Oracle.mru ~frames:2 trace in
  Alcotest.(check (list int)) "lru evicts oldest" [ 0 ]
    (List.map (fun e -> e.Oracle.page) lru.Oracle.evictions);
  Alcotest.(check (list int)) "mru evicts newest" [ 1 ]
    (List.map (fun e -> e.Oracle.page) mru.Oracle.evictions)

let test_oracle_of_policy_name () =
  List.iter
    (fun name ->
      match Oracle.of_policy_name name with
      | Some _ -> ()
      | None -> Alcotest.fail ("missing oracle for " ^ name))
    [ "fifo"; "lru"; "mru"; "clock"; "second-chance"; "adaptive" ];
  Alcotest.(check bool) "unknown rejected" true (Oracle.of_policy_name "opt" = None)

(* The classic Belady anomaly witness: FIFO on 1 2 3 4 1 2 5 1 2 3 4 5
   faults 9 times with 3 frames but 10 times with 4 — more memory, more
   faults.  The adversary search engine hunts for exactly this shape,
   so the oracle it trusts is pinned here by hand. *)
let belady_witness =
  t
    (List.map
       (fun p -> (p, false))
       [ 1; 2; 3; 4; 1; 2; 5; 1; 2; 3; 4; 5 ])

let test_fifo_belady_anomaly () =
  let f3 = (Oracle.fifo ~frames:3 belady_witness).Oracle.faults in
  let f4 = (Oracle.fifo ~frames:4 belady_witness).Oracle.faults in
  Alcotest.(check int) "faults at 3 frames" 9 f3;
  Alcotest.(check int) "faults at 4 frames" 10 f4;
  Alcotest.(check bool) "anomaly: more frames, more faults" true (f4 > f3)

(* LRU is a stack algorithm: the resident set at k frames is a subset
   of the resident set at k+1, so adding frames can never add faults —
   the property that makes the adaptive policy's LRU mode a safe
   harbor. *)
let lru_no_anomaly_prop =
  QCheck.Test.make ~name:"lru never exhibits Belady's anomaly" ~count:300
    (QCheck.make ~print:print_case (case_gen ~fmin:1 ~fmax:10))
    (fun (frames, _npages, accesses) ->
      let f = (Oracle.lru ~frames accesses).Oracle.faults in
      let f' = (Oracle.lru ~frames:(frames + 1) accesses).Oracle.faults in
      if f' > f then
        QCheck.Test.fail_reportf "lru anomaly: faults(%d)=%d < faults(%d)=%d" frames f
          (frames + 1) f';
      true)

let test_cyclic_mru_beats_lru () =
  (* the paper's nested-loop pattern: MRU faults strictly less *)
  let npages = 12 and frames = 8 in
  let trace =
    Array.init (npages * 4) (fun i -> { Oracle.page = i mod npages; write = false })
  in
  let lru = Oracle.lru ~frames trace in
  let mru = Oracle.mru ~frames trace in
  Alcotest.(check bool)
    (Printf.sprintf "mru %d < lru %d" mru.Oracle.faults lru.Oracle.faults)
    true
    (mru.Oracle.faults < lru.Oracle.faults)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "oracle"
    [
      ( "handworked",
        [
          Alcotest.test_case "fifo" `Quick test_fifo_handworked;
          Alcotest.test_case "lru vs mru" `Quick test_lru_vs_mru_handworked;
          Alcotest.test_case "of_policy_name" `Quick test_oracle_of_policy_name;
          Alcotest.test_case "cyclic: mru beats lru" `Quick test_cyclic_mru_beats_lru;
          Alcotest.test_case "fifo: Belady anomaly witness" `Quick test_fifo_belady_anomaly;
        ] );
      ( "anomaly", qc [ lru_no_anomaly_prop ] );
      ( "differential",
        qc
          [
            simple_prop `Fifo; simple_prop `Lru; simple_prop `Mru; second_chance_prop;
            clock_prop; adaptive_prop;
          ] );
    ]
