A policy in the pseudo-code language:

  $ cat > mru.hp << 'POLICY'
  > var one = 1
  > 
  > event PageFault() {
  >   if (empty(_free_queue)) { mru(_active_queue) }
  >   page = dequeue_head(_free_queue)
  >   return page
  > }
  > event ReclaimFrame() {
  >   while (_reclaim_target > 0) {
  >     if (empty(_free_queue)) { fifo(_active_queue) }
  >     release(one)
  >     _reclaim_target = _reclaim_target - 1
  >   }
  > }
  > POLICY

The security checker accepts it:

  $ hipec check mru.hp
  policy accepted by the security checker

Translation produces a Table 2-style listing:

  $ hipec translate mru.hp
  ;; PageFault
    .  48 69 50 45  HiPEC Magic No
    0  04 01 00 00  EmptyQ $1
    1  06 00 00 04  Jump 4
    2  13 03 00 00  MRU $3
    3  06 00 00 04  Jump 4
    4  07 0B 01 01  DeQueue $11 $1 head
    5  00 0B 00 00  Return $11
  
  ;; ReclaimFrame
    .  48 69 50 45  HiPEC Magic No
    0  02 08 13 01  Comp $8 $19 gt
    1  06 00 00 0E  Jump 14
    2  04 01 00 00  EmptyQ $1
    3  06 00 00 06  Jump 6
    4  11 03 00 00  FIFO $3
    5  06 00 00 06  Jump 6
    6  0A 10 00 00  Release $16
    7  06 00 00 08  Jump 8
    8  01 12 12 02  Arith $18 $18 sub
    9  01 12 08 01  Arith $18 $8 add
   10  01 12 11 02  Arith $18 $17 sub
   11  01 08 08 02  Arith $8 $8 sub
   12  01 08 12 01  Arith $8 $18 add
   13  06 00 00 00  Jump 0
   14  00 00 00 00  Return $0
  
  ;; 21 commands across 2 events; 4 user operand slots
  ;; compiled-backend fusion: 3 test_skip, 1 arith_chain — 11 of 21 commands covered

Assembly and disassembly round-trip:

  $ hipec assemble mru.hp -o mru.hpb
  wrote 116 bytes (21 commands) to mru.hpb

  $ hipec disassemble mru.hpb | head -4
  ;; PageFault
    .  48 69 50 45  HiPEC Magic No
    0  04 01 00 00  EmptyQ $1
    1  06 00 00 04  Jump 4

A broken policy is rejected with a location:

  $ hipec check /dev/null
  rejected: missing mandatory event PageFault
  [1]

The static analyzer: a policy the security checker accepts (it is
well-formed) can still be provably broken — `hipec lint` runs the
abstract interpreter over it and exits nonzero on error findings:

  $ cat > bad.hp << 'POLICY'
  > var zero = 0
  > var acc = 1
  > event PageFault() {
  >   acc = acc / zero
  >   page = dequeue_head(_free_queue)
  >   return page
  > }
  > event ReclaimFrame() {
  >   release(acc)
  > }
  > POLICY

  $ hipec check bad.hp
  policy accepted by the security checker

  $ hipec lint bad.hp
  error: PageFault: [no-return-reachable] no Return is reachable: every entry provably traps or loops forever
  warning: PageFault CC 2: [div-by-zero] division always traps: the divisor is provably zero
  fuel: PageFault: bounded: <= 3 commands per entry
  fuel: ReclaimFrame: bounded: <= 3 commands per entry
  runtime traps possible: div-by-zero
  2 findings (1 errors)
  [1]

Built-in policies lint clean; the deliberately broken one does not:

  $ hipec lint --builtin fifo
  fuel: PageFault: bounded: <= 5 commands per entry
  fuel: ReclaimFrame: terminates (no static command bound)
  runtime traps possible: deq-empty
  0 findings (0 errors)

  $ hipec lint --builtin looping | tail -2
  runtime traps: none possible
  4 findings (2 errors)

Analysis facts feed the fusion planner: a Rem whose divisor is a
never-written constant joins the surrounding arith chain (without the
proof, the chain would split around the fallible command):

  $ cat > hashed.hp << 'POLICY'
  > var stride = 7
  > var acc = 0
  > event PageFault() {
  >   acc = acc + 2
  >   acc = acc % stride
  >   page = dequeue_head(_free_queue)
  >   return page
  > }
  > event ReclaimFrame() {
  >   release(stride)
  > }
  > POLICY

  $ hipec translate hashed.hp | tail -3
  ;; 15 commands across 2 events; 4 user operand slots
  ;; compiled-backend fusion: 1 arith_chain — 10 of 15 commands covered
  ;; analysis: PageFault CC 7 Rem fused: divisor ∈ [7,7]

Table 4 reproduces the paper's mechanism costs:

  $ hipec table4
  null syscall 19 us, null IPC 292 us, HiPEC fast path 150 ns (3 commands)

The offline advisor picks MRU for a cyclic scan:

  $ hipec advise --pattern cyclic --pages 64 --frames 16 --count 256 | tail -1
  recommended HiPEC policy: MRU

A small join reproduces the MRU-vs-LRU gap deterministically:

  $ hipec run-join --outer 8 --memory 4 --scans 8 --policy mru
  join: outer=8MB memory=4MB scans=8
    elapsed              0.81 min
    faults               9216 (analytic LRU 16384, MRU 9216)
    pageins              9216
    output tuples     1048576

  $ hipec run-join --outer 8 --memory 4 --scans 8 --policy default
  join: outer=8MB memory=4MB scans=8
    elapsed              1.44 min
    faults              16384 (analytic LRU 16384, MRU 9216)
    pageins             16384
    output tuples     1048576

The chaos scenario survives fault injection: no task is killed, the
runaway policy is demoted to the default pageout path, every transient
error is retried, and the kernel auditor finds nothing:

  $ hipec chaos --smoke | head -7
  elapsed          11.110s
  task kills       0
  demotions        1 (HiPEC policy execution timeout (demoted by security checker))
  paging I/O       29 errors, 29 retries, 0 giveups, 2 swap remaps
  fault injection  27 transients, 2 bad-block hits, 11 latency spikes
  auditor          109 sweeps, 0 violations
  throughput degradation vs clean disk: +1.78%
