A policy in the pseudo-code language:

  $ cat > mru.hp << 'POLICY'
  > var one = 1
  > 
  > event PageFault() {
  >   if (empty(_free_queue)) { mru(_active_queue) }
  >   page = dequeue_head(_free_queue)
  >   return page
  > }
  > event ReclaimFrame() {
  >   while (_reclaim_target > 0) {
  >     if (empty(_free_queue)) { fifo(_active_queue) }
  >     release(one)
  >     _reclaim_target = _reclaim_target - 1
  >   }
  > }
  > POLICY

The security checker accepts it:

  $ hipec check mru.hp
  policy accepted by the security checker

Translation produces a Table 2-style listing:

  $ hipec translate mru.hp
  ;; PageFault
    .  48 69 50 45  HiPEC Magic No
    0  04 01 00 00  EmptyQ $1
    1  06 00 00 04  Jump 4
    2  13 03 00 00  MRU $3
    3  06 00 00 04  Jump 4
    4  07 0B 01 01  DeQueue $11 $1 head
    5  00 0B 00 00  Return $11
  
  ;; ReclaimFrame
    .  48 69 50 45  HiPEC Magic No
    0  02 08 13 01  Comp $8 $19 gt
    1  06 00 00 0E  Jump 14
    2  04 01 00 00  EmptyQ $1
    3  06 00 00 06  Jump 6
    4  11 03 00 00  FIFO $3
    5  06 00 00 06  Jump 6
    6  0A 10 00 00  Release $16
    7  06 00 00 08  Jump 8
    8  01 12 12 02  Arith $18 $18 sub
    9  01 12 08 01  Arith $18 $8 add
   10  01 12 11 02  Arith $18 $17 sub
   11  01 08 08 02  Arith $8 $8 sub
   12  01 08 12 01  Arith $8 $18 add
   13  06 00 00 00  Jump 0
   14  00 00 00 00  Return $0
  
  ;; 21 commands across 2 events; 4 user operand slots
  ;; compiled-backend fusion: 3 test_skip, 1 arith_chain — 11 of 21 commands covered

Assembly and disassembly round-trip:

  $ hipec assemble mru.hp -o mru.hpb
  wrote 116 bytes (21 commands) to mru.hpb

  $ hipec disassemble mru.hpb | head -4
  ;; PageFault
    .  48 69 50 45  HiPEC Magic No
    0  04 01 00 00  EmptyQ $1
    1  06 00 00 04  Jump 4

A broken policy is rejected with a location:

  $ hipec check /dev/null
  rejected: missing mandatory event PageFault
  [1]

Table 4 reproduces the paper's mechanism costs:

  $ hipec table4
  null syscall 19 us, null IPC 292 us, HiPEC fast path 150 ns (3 commands)

The offline advisor picks MRU for a cyclic scan:

  $ hipec advise --pattern cyclic --pages 64 --frames 16 --count 256 | tail -1
  recommended HiPEC policy: MRU

A small join reproduces the MRU-vs-LRU gap deterministically:

  $ hipec run-join --outer 8 --memory 4 --scans 8 --policy mru
  join: outer=8MB memory=4MB scans=8
    elapsed              0.81 min
    faults               9216 (analytic LRU 16384, MRU 9216)
    pageins              9216
    output tuples     1048576

  $ hipec run-join --outer 8 --memory 4 --scans 8 --policy default
  join: outer=8MB memory=4MB scans=8
    elapsed              1.44 min
    faults              16384 (analytic LRU 16384, MRU 9216)
    pageins             16384
    output tuples     1048576

The chaos scenario survives fault injection: no task is killed, the
runaway policy is demoted to the default pageout path, every transient
error is retried, and the kernel auditor finds nothing:

  $ hipec chaos --smoke | head -7
  elapsed          11.110s
  task kills       0
  demotions        1 (HiPEC policy execution timeout (demoted by security checker))
  paging I/O       29 errors, 29 retries, 0 giveups, 2 swap remaps
  fault injection  27 transients, 2 bad-block hits, 11 latency spikes
  auditor          109 sweeps, 0 violations
  throughput degradation vs clean disk: +1.78%
