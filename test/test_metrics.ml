(* Tests for lib/metrics: registry determinism, histogram percentiles
   against a sorted-array oracle, the zero-cost-when-disabled contract,
   interp-vs-compiled per-opcode attribution, and the top-bucket
   boundary regressions (values at the upper edge must overflow). *)

open Hipec_core
open Hipec_workloads
module Mx = Hipec_metrics.Metrics
module St = Hipec_sim.Stats
module Trace = Hipec_trace.Trace

(* ------------------------------------------------------------------ *)
(* Registry basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_registry_kinds () =
  let reg = Mx.Registry.create () in
  Mx.Registry.counter_add reg "c" 3;
  Mx.Registry.counter_add reg "c" 2;
  Mx.Registry.gauge_set reg "g" 7;
  Mx.Registry.observe reg "h" 100;
  Alcotest.(check (option int)) "counter" (Some 5) (Mx.Registry.counter_value reg "c");
  Alcotest.(check (option int)) "gauge" (Some 7) (Mx.Registry.gauge_value reg "g");
  Alcotest.(check bool) "histogram" true (Mx.Registry.histogram reg "h" <> None);
  Alcotest.(check (option int)) "missing" None (Mx.Registry.counter_value reg "nope");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "metric c already registered with another kind (want gauge)")
    (fun () -> Mx.Registry.gauge_set reg "c" 1)

let test_series_downsampling () =
  let reg = Mx.Registry.create ~tick_ns:100 ~series_cap:4 () in
  (* only samples >= tick apart are accepted *)
  Mx.Registry.sample reg "s" ~now_ns:0 10;
  Mx.Registry.sample reg "s" ~now_ns:50 11;   (* rejected: < tick *)
  Mx.Registry.sample reg "s" ~now_ns:100 12;
  Mx.Registry.sample reg "s" ~now_ns:199 13;  (* rejected *)
  Mx.Registry.sample reg "s" ~now_ns:200 14;
  let s = Option.get (Mx.Registry.series reg "s") in
  Alcotest.(check (list (pair int int)))
    "downsampled points"
    [ (0, 10); (100, 12); (200, 14) ]
    (Array.to_list (Mx.Series.points s));
  (* the ring keeps the newest cap points and counts evictions *)
  Mx.Registry.sample reg "s" ~now_ns:300 15;
  Mx.Registry.sample reg "s" ~now_ns:400 16;
  Alcotest.(check int) "dropped" 1 (Mx.Series.dropped s);
  Alcotest.(check (list (pair int int)))
    "ring keeps newest"
    [ (100, 12); (200, 14); (300, 15); (400, 16) ]
    (Array.to_list (Mx.Series.points s))

(* ------------------------------------------------------------------ *)
(* Zero cost when disabled                                             *)
(* ------------------------------------------------------------------ *)

let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_zero_cost_when_disabled () =
  ignore (Mx.uninstall ());
  Alcotest.(check bool) "disabled" false (Mx.on ());
  let emits () =
    for i = 1 to 10_000 do
      Mx.incr "zc.counter";
      Mx.add "zc.counter" 2;
      Mx.gauge_set "zc.gauge" i;
      Mx.observe "zc.hist" i;
      Mx.sample "zc.series" i;
      assert (Mx.profile_begin ~backend:"interp" ~container:0 ~sim_ns:i = None)
    done
  in
  let baseline = minor_words_of (fun () -> for _ = 1 to 10_000 do () done) in
  let cost = minor_words_of emits in
  (* a handful of words covers the Gc.minor_words float boxes; the
     10k iterations themselves must not allocate *)
  Alcotest.(check bool)
    (Printf.sprintf "no allocation when disabled (%.0f words)" (cost -. baseline))
    true
    (cost -. baseline <= 64.);
  (* and no observable state: a registry installed afterwards is empty *)
  let reg = Mx.install () in
  Alcotest.(check int) "nothing materialized" 0
    (List.length (Mx.Registry.kstat_lines reg));
  ignore (Mx.uninstall ())

(* ------------------------------------------------------------------ *)
(* Histogram percentiles vs the sorted-array oracle                    *)
(* ------------------------------------------------------------------ *)

(* The log-bucketed estimate returns the upper edge of the bucket
   holding the nearest-rank sample, clamped to the exact [min, max]:
   it can never undershoot the true percentile, and overshoots by at
   most one bucket width (a factor of 2 above 1). *)
let prop_percentile_vs_oracle =
  QCheck.Test.make ~name:"log-histogram percentile brackets the exact one" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_bound 2_000_000))
        (int_range 1 100))
    (fun (xs, p) ->
      let p = float_of_int p in
      let h = St.Histogram.create_log "oracle" in
      List.iter (fun x -> St.Histogram.add h (float_of_int x)) xs;
      let samples = Array.of_list (List.map float_of_int xs) in
      let exact = St.Summary.percentile samples p in
      (* the shared test-support reference implements the same
         nearest-rank rule independently; pin them together first *)
      if exact <> Test_support.percentile_exact samples p then
        QCheck.Test.fail_reportf "Summary.percentile %g disagrees with the reference %g"
          exact
          (Test_support.percentile_exact samples p);
      let est = St.Histogram.percentile h p in
      est >= exact && est <= Float.max 1. (2. *. exact) && est <= St.Histogram.max h)

let test_percentile_handworked () =
  let h = St.Histogram.create_log "hw" in
  List.iter (fun v -> St.Histogram.add h v) [ 3.; 5.; 100.; 1000. ];
  (* rank 2 of 4 at p50 -> the sample 5, bucket [4,8) -> clamped edge *)
  Alcotest.(check bool) "p50 in [5, 8]" true
    (St.Histogram.percentile h 50. >= 5. && St.Histogram.percentile h 50. <= 8.);
  Alcotest.(check (float 0.0)) "p100 is the max" 1000. (St.Histogram.percentile h 100.);
  let empty = St.Histogram.create_log "empty" in
  Alcotest.(check (float 0.0)) "empty percentile" 0. (St.Histogram.percentile empty 50.)

(* ------------------------------------------------------------------ *)
(* Top-bucket boundary regressions                                     *)
(* ------------------------------------------------------------------ *)

let test_fixed_histogram_top_edge () =
  (* driver.ml's per-fault latency histogram shape: 16 x 1ms over
     [0,16) ms.  A value equal to [hi] lies outside the closed-open
     range and must land in overflow, not the last bucket. *)
  let h = St.Histogram.create ~buckets:16 ~lo:0. ~hi:16. "edge" in
  St.Histogram.add h 0.;
  St.Histogram.add h 15.999;
  St.Histogram.add h 16.;
  St.Histogram.add h (-0.5);
  let counts = St.Histogram.bucket_counts h in
  Alcotest.(check int) "lo lands in bucket 0" 1 counts.(0);
  Alcotest.(check int) "just under hi in last bucket" 1 counts.(15);
  Alcotest.(check int) "hi overflows" 1 (St.Histogram.overflow h);
  Alcotest.(check int) "below lo underflows" 1 (St.Histogram.underflow h);
  Alcotest.(check int) "all samples counted" 4 (St.Histogram.count h)

let test_log_histogram_bucket_edges () =
  let h = St.Histogram.create_log ~buckets:8 "log-edge" in
  Alcotest.(check int) "0 -> bucket 0" 0 (St.Histogram.bucket_index h 0.);
  Alcotest.(check int) "0.5 -> bucket 0" 0 (St.Histogram.bucket_index h 0.5);
  Alcotest.(check int) "1 -> bucket 1" 1 (St.Histogram.bucket_index h 1.);
  Alcotest.(check int) "2 -> bucket 2" 2 (St.Histogram.bucket_index h 2.);
  Alcotest.(check int) "3 -> bucket 2" 2 (St.Histogram.bucket_index h 3.);
  Alcotest.(check int) "127 -> bucket 7" 7 (St.Histogram.bucket_index h 127.);
  Alcotest.(check int) "128 overflows" 8 (St.Histogram.bucket_index h 128.);
  Alcotest.(check int) "negative underflows" (-1) (St.Histogram.bucket_index h (-1.));
  let lo, hi = St.Histogram.bucket_bounds h 3 in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "bucket 3 = [4,8)" (4., 8.) (lo, hi)

let test_trace_fault_latency_top_edge () =
  let c = Trace.start () in
  Trace.fault ~task:1 ~vpn:0 ~kind:Hipec_trace.Event.Hipec ~latency_ns:15_999_999;
  Trace.fault ~task:1 ~vpn:1 ~kind:Hipec_trace.Event.Hipec ~latency_ns:16_000_000;
  ignore (Trace.stop ());
  let buckets, overflow = Trace.fault_latency_buckets c in
  Alcotest.(check int) "just under 16ms in last bucket" 1 buckets.(15);
  Alcotest.(check int) "exactly 16ms overflows" 1 overflow

(* ------------------------------------------------------------------ *)
(* Deterministic snapshots                                             *)
(* ------------------------------------------------------------------ *)

let run_scenario_under_registry name =
  let scenario =
    match Trace_run.scenario_of_name name with
    | Some s -> s
    | None -> Alcotest.failf "unknown scenario %s" name
  in
  let reg = Mx.install () in
  Fun.protect
    ~finally:(fun () -> ignore (Mx.uninstall ()))
    (fun () ->
      match Trace_run.run_scenario scenario with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e);
  reg

let test_snapshot_deterministic () =
  let snap () =
    Mx.Registry.to_json ~wall:false (run_scenario_under_registry "policy")
  in
  let a = snap () and b = snap () in
  Alcotest.(check string) "identical seeded runs serialize identically" a b;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "wall fields segregated" false (contains a "wall_ns")

(* ------------------------------------------------------------------ *)
(* Profiler: attribution and backend agreement                         *)
(* ------------------------------------------------------------------ *)

let test_profiler_attribution () =
  let reg = Mx.install () in
  let run = Option.get (Mx.profile_begin ~backend:"test" ~container:1 ~sim_ns:100) in
  Mx.profile_step run ~opcode:3 ~sim_ns:150;
  (* 50 ns of dispatch before the first fetch -> overhead *)
  Mx.profile_step run ~opcode:5 ~sim_ns:175;
  (* the 25 ns since the opcode-3 boundary belong to opcode 3 *)
  Mx.profile_end run ~sim_ns:200;
  (* and the tail to opcode 5 *)
  ignore (Mx.uninstall ());
  let p = Mx.Registry.profile reg ~backend:"test" ~container:1 in
  let cells = Mx.Profile.cells p in
  Alcotest.(check int) "overhead sim" 50 (Mx.Profile.overhead p).Mx.Profile.sim_ns;
  Alcotest.(check int) "op3 count" 1 cells.(3).Mx.Profile.count;
  Alcotest.(check int) "op3 sim" 25 cells.(3).Mx.Profile.sim_ns;
  Alcotest.(check int) "op5 count" 1 cells.(5).Mx.Profile.count;
  Alcotest.(check int) "op5 sim" 25 cells.(5).Mx.Profile.sim_ns;
  Alcotest.(check int) "sim total telescopes" 100 (Mx.Profile.sim_total p);
  Alcotest.(check int) "runs" 1 (Mx.Profile.runs p)

let with_backend b f =
  let saved = Executor.default_backend () in
  Executor.set_default_backend b;
  Fun.protect ~finally:(fun () -> Executor.set_default_backend saved) f

(* Run [name] under both executors into one registry; their per-opcode
   simulated attributions must agree cell for cell (the boundary timers
   sit at identical simulated instants in both prologues). *)
let check_backends_agree name () =
  let scenario =
    match Trace_run.scenario_of_name name with
    | Some s -> s
    | None -> Alcotest.failf "unknown scenario %s" name
  in
  let reg = Mx.install () in
  Fun.protect
    ~finally:(fun () -> ignore (Mx.uninstall ()))
    (fun () ->
      List.iter
        (fun b ->
          with_backend b (fun () ->
              match Trace_run.run_scenario scenario with
              | Ok () -> ()
              | Error e -> Alcotest.failf "%s: %s" name e))
        [ Executor.Interp; Executor.Compiled ]);
  match
    ( Mx.Registry.profile_totals reg ~backend:"interp",
      Mx.Registry.profile_totals reg ~backend:"compiled" )
  with
  | Some (ci, oi, ri), Some (cc, oc, rc) ->
      Alcotest.(check int) "runs" ri rc;
      Alcotest.(check int) "overhead sim" oi.Mx.Profile.sim_ns oc.Mx.Profile.sim_ns;
      Array.iteri
        (fun i (c : Mx.Profile.cell) ->
          Alcotest.(check int) (Printf.sprintf "op %d count" i) c.Mx.Profile.count
            cc.(i).Mx.Profile.count;
          Alcotest.(check int) (Printf.sprintf "op %d sim_ns" i) c.Mx.Profile.sim_ns
            cc.(i).Mx.Profile.sim_ns)
        ci;
      Alcotest.(check bool) "commands were profiled" true
        (Array.exists (fun (c : Mx.Profile.cell) -> c.Mx.Profile.count > 0) ci)
  | _ -> Alcotest.fail "a backend left no profile"

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "kinds and lookups" `Quick test_registry_kinds;
          Alcotest.test_case "series downsampling" `Quick test_series_downsampling;
          Alcotest.test_case "zero cost when disabled" `Quick test_zero_cost_when_disabled;
        ] );
      ( "percentiles",
        Alcotest.test_case "handworked" `Quick test_percentile_handworked
        :: qc [ prop_percentile_vs_oracle ] );
      ( "boundaries",
        [
          Alcotest.test_case "fixed histogram top edge" `Quick test_fixed_histogram_top_edge;
          Alcotest.test_case "log histogram bucket edges" `Quick
            test_log_histogram_bucket_edges;
          Alcotest.test_case "trace fault latency top edge" `Quick
            test_trace_fault_latency_top_edge;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seeded snapshot byte-stable" `Quick test_snapshot_deterministic ] );
      ( "profiler",
        [
          Alcotest.test_case "boundary-timer attribution" `Quick test_profiler_attribution;
          Alcotest.test_case "backends agree on policy scenario" `Quick
            (check_backends_agree "policy");
          Alcotest.test_case "backends agree on join-small" `Quick
            (check_backends_agree "join-small");
        ] );
    ]
