(* Tests for lib/metrics: registry determinism, histogram percentiles
   against a sorted-array oracle, the zero-cost-when-disabled contract,
   interp-vs-compiled per-opcode attribution, and the top-bucket
   boundary regressions (values at the upper edge must overflow). *)

open Hipec_core
open Hipec_workloads
module Mx = Hipec_metrics.Metrics
module St = Hipec_sim.Stats
module Trace = Hipec_trace.Trace

(* ------------------------------------------------------------------ *)
(* Registry basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_registry_kinds () =
  let reg = Mx.Registry.create () in
  Mx.Registry.counter_add reg "c" 3;
  Mx.Registry.counter_add reg "c" 2;
  Mx.Registry.gauge_set reg "g" 7;
  Mx.Registry.observe reg "h" 100;
  Alcotest.(check (option int)) "counter" (Some 5) (Mx.Registry.counter_value reg "c");
  Alcotest.(check (option int)) "gauge" (Some 7) (Mx.Registry.gauge_value reg "g");
  Alcotest.(check bool) "histogram" true (Mx.Registry.histogram reg "h" <> None);
  Alcotest.(check (option int)) "missing" None (Mx.Registry.counter_value reg "nope");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "metric c already registered with another kind (want gauge)")
    (fun () -> Mx.Registry.gauge_set reg "c" 1)

let test_series_downsampling () =
  let reg = Mx.Registry.create ~tick_ns:100 ~series_cap:4 () in
  (* only samples >= tick apart are accepted *)
  Mx.Registry.sample reg "s" ~now_ns:0 10;
  Mx.Registry.sample reg "s" ~now_ns:50 11;   (* rejected: < tick *)
  Mx.Registry.sample reg "s" ~now_ns:100 12;
  Mx.Registry.sample reg "s" ~now_ns:199 13;  (* rejected *)
  Mx.Registry.sample reg "s" ~now_ns:200 14;
  let s = Option.get (Mx.Registry.series reg "s") in
  Alcotest.(check (list (pair int int)))
    "downsampled points"
    [ (0, 10); (100, 12); (200, 14) ]
    (Array.to_list (Mx.Series.points s));
  (* the ring keeps the newest cap points and counts evictions *)
  Mx.Registry.sample reg "s" ~now_ns:300 15;
  Mx.Registry.sample reg "s" ~now_ns:400 16;
  Alcotest.(check int) "dropped" 1 (Mx.Series.dropped s);
  Alcotest.(check (list (pair int int)))
    "ring keeps newest"
    [ (100, 12); (200, 14); (300, 15); (400, 16) ]
    (Array.to_list (Mx.Series.points s))

(* ------------------------------------------------------------------ *)
(* Zero cost when disabled                                             *)
(* ------------------------------------------------------------------ *)

let minor_words_of f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_zero_cost_when_disabled () =
  ignore (Mx.uninstall ());
  Alcotest.(check bool) "disabled" false (Mx.on ());
  let emits () =
    for i = 1 to 10_000 do
      Mx.incr "zc.counter";
      Mx.add "zc.counter" 2;
      Mx.gauge_set "zc.gauge" i;
      Mx.observe "zc.hist" i;
      Mx.sample "zc.series" i;
      assert (Mx.profile_begin ~backend:"interp" ~container:0 ~sim_ns:i = None)
    done
  in
  let baseline = minor_words_of (fun () -> for _ = 1 to 10_000 do () done) in
  let cost = minor_words_of emits in
  (* a handful of words covers the Gc.minor_words float boxes; the
     10k iterations themselves must not allocate *)
  Alcotest.(check bool)
    (Printf.sprintf "no allocation when disabled (%.0f words)" (cost -. baseline))
    true
    (cost -. baseline <= 64.);
  (* and no observable state: a registry installed afterwards is empty *)
  let reg = Mx.install () in
  Alcotest.(check int) "nothing materialized" 0
    (List.length (Mx.Registry.kstat_lines reg));
  ignore (Mx.uninstall ())

(* ------------------------------------------------------------------ *)
(* Histogram percentiles vs the sorted-array oracle                    *)
(* ------------------------------------------------------------------ *)

(* The log-bucketed estimate returns the upper edge of the bucket
   holding the nearest-rank sample, clamped to the exact [min, max]:
   it can never undershoot the true percentile, and overshoots by at
   most one bucket width (a factor of 2 above 1). *)
let prop_percentile_vs_oracle =
  QCheck.Test.make ~name:"log-histogram percentile brackets the exact one" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_bound 2_000_000))
        (int_range 1 100))
    (fun (xs, p) ->
      let p = float_of_int p in
      let h = St.Histogram.create_log "oracle" in
      List.iter (fun x -> St.Histogram.add h (float_of_int x)) xs;
      let samples = Array.of_list (List.map float_of_int xs) in
      let exact = St.Summary.percentile samples p in
      (* the shared test-support reference implements the same
         nearest-rank rule independently; pin them together first *)
      if exact <> Test_support.percentile_exact samples p then
        QCheck.Test.fail_reportf "Summary.percentile %g disagrees with the reference %g"
          exact
          (Test_support.percentile_exact samples p);
      let est = St.Histogram.percentile h p in
      est >= exact && est <= Float.max 1. (2. *. exact) && est <= St.Histogram.max h)

let test_percentile_handworked () =
  let h = St.Histogram.create_log "hw" in
  List.iter (fun v -> St.Histogram.add h v) [ 3.; 5.; 100.; 1000. ];
  (* rank 2 of 4 at p50 -> the sample 5, bucket [4,8) -> clamped edge *)
  Alcotest.(check bool) "p50 in [5, 8]" true
    (St.Histogram.percentile h 50. >= 5. && St.Histogram.percentile h 50. <= 8.);
  Alcotest.(check (float 0.0)) "p100 is the max" 1000. (St.Histogram.percentile h 100.);
  let empty = St.Histogram.create_log "empty" in
  Alcotest.(check (float 0.0)) "empty percentile" 0. (St.Histogram.percentile empty 50.)

(* ------------------------------------------------------------------ *)
(* Top-bucket boundary regressions                                     *)
(* ------------------------------------------------------------------ *)

let test_fixed_histogram_top_edge () =
  (* driver.ml's per-fault latency histogram shape: 16 x 1ms over
     [0,16) ms.  A value equal to [hi] lies outside the closed-open
     range and must land in overflow, not the last bucket. *)
  let h = St.Histogram.create ~buckets:16 ~lo:0. ~hi:16. "edge" in
  St.Histogram.add h 0.;
  St.Histogram.add h 15.999;
  St.Histogram.add h 16.;
  St.Histogram.add h (-0.5);
  let counts = St.Histogram.bucket_counts h in
  Alcotest.(check int) "lo lands in bucket 0" 1 counts.(0);
  Alcotest.(check int) "just under hi in last bucket" 1 counts.(15);
  Alcotest.(check int) "hi overflows" 1 (St.Histogram.overflow h);
  Alcotest.(check int) "below lo underflows" 1 (St.Histogram.underflow h);
  Alcotest.(check int) "all samples counted" 4 (St.Histogram.count h)

let test_log_histogram_bucket_edges () =
  let h = St.Histogram.create_log ~buckets:8 "log-edge" in
  Alcotest.(check int) "0 -> bucket 0" 0 (St.Histogram.bucket_index h 0.);
  Alcotest.(check int) "0.5 -> bucket 0" 0 (St.Histogram.bucket_index h 0.5);
  Alcotest.(check int) "1 -> bucket 1" 1 (St.Histogram.bucket_index h 1.);
  Alcotest.(check int) "2 -> bucket 2" 2 (St.Histogram.bucket_index h 2.);
  Alcotest.(check int) "3 -> bucket 2" 2 (St.Histogram.bucket_index h 3.);
  Alcotest.(check int) "127 -> bucket 7" 7 (St.Histogram.bucket_index h 127.);
  Alcotest.(check int) "128 overflows" 8 (St.Histogram.bucket_index h 128.);
  Alcotest.(check int) "negative underflows" (-1) (St.Histogram.bucket_index h (-1.));
  let lo, hi = St.Histogram.bucket_bounds h 3 in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "bucket 3 = [4,8)" (4., 8.) (lo, hi)

let test_trace_fault_latency_top_edge () =
  let c = Trace.start () in
  Trace.fault ~task:1 ~vpn:0 ~kind:Hipec_trace.Event.Hipec ~latency_ns:15_999_999;
  Trace.fault ~task:1 ~vpn:1 ~kind:Hipec_trace.Event.Hipec ~latency_ns:16_000_000;
  ignore (Trace.stop ());
  let buckets, overflow = Trace.fault_latency_buckets c in
  Alcotest.(check int) "just under 16ms in last bucket" 1 buckets.(15);
  Alcotest.(check int) "exactly 16ms overflows" 1 overflow

(* ------------------------------------------------------------------ *)
(* Deterministic snapshots                                             *)
(* ------------------------------------------------------------------ *)

let run_scenario_under_registry name =
  let scenario =
    match Trace_run.scenario_of_name name with
    | Some s -> s
    | None -> Alcotest.failf "unknown scenario %s" name
  in
  let reg = Mx.install () in
  Fun.protect
    ~finally:(fun () -> ignore (Mx.uninstall ()))
    (fun () ->
      match Trace_run.run_scenario scenario with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e);
  reg

let test_snapshot_deterministic () =
  let snap () =
    Mx.Registry.to_json ~wall:false (run_scenario_under_registry "policy")
  in
  let a = snap () and b = snap () in
  Alcotest.(check string) "identical seeded runs serialize identically" a b;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "wall fields segregated" false (contains a "wall_ns")

(* ------------------------------------------------------------------ *)
(* Profiler: attribution and backend agreement                         *)
(* ------------------------------------------------------------------ *)

let test_profiler_attribution () =
  let reg = Mx.install () in
  let run = Option.get (Mx.profile_begin ~backend:"test" ~container:1 ~sim_ns:100) in
  Mx.profile_step run ~opcode:3 ~sim_ns:150;
  (* 50 ns of dispatch before the first fetch -> overhead *)
  Mx.profile_step run ~opcode:5 ~sim_ns:175;
  (* the 25 ns since the opcode-3 boundary belong to opcode 3 *)
  Mx.profile_end run ~sim_ns:200;
  (* and the tail to opcode 5 *)
  ignore (Mx.uninstall ());
  let p = Mx.Registry.profile reg ~backend:"test" ~container:1 in
  let cells = Mx.Profile.cells p in
  Alcotest.(check int) "overhead sim" 50 (Mx.Profile.overhead p).Mx.Profile.sim_ns;
  Alcotest.(check int) "op3 count" 1 cells.(3).Mx.Profile.count;
  Alcotest.(check int) "op3 sim" 25 cells.(3).Mx.Profile.sim_ns;
  Alcotest.(check int) "op5 count" 1 cells.(5).Mx.Profile.count;
  Alcotest.(check int) "op5 sim" 25 cells.(5).Mx.Profile.sim_ns;
  Alcotest.(check int) "sim total telescopes" 100 (Mx.Profile.sim_total p);
  Alcotest.(check int) "runs" 1 (Mx.Profile.runs p)

let with_backend b f =
  let saved = Executor.default_backend () in
  Executor.set_default_backend b;
  Fun.protect ~finally:(fun () -> Executor.set_default_backend saved) f

(* Run [name] under both executors into one registry; their per-opcode
   simulated attributions must agree cell for cell (the boundary timers
   sit at identical simulated instants in both prologues). *)
let check_backends_agree name () =
  let scenario =
    match Trace_run.scenario_of_name name with
    | Some s -> s
    | None -> Alcotest.failf "unknown scenario %s" name
  in
  let reg = Mx.install () in
  Fun.protect
    ~finally:(fun () -> ignore (Mx.uninstall ()))
    (fun () ->
      List.iter
        (fun b ->
          with_backend b (fun () ->
              match Trace_run.run_scenario scenario with
              | Ok () -> ()
              | Error e -> Alcotest.failf "%s: %s" name e))
        [ Executor.Interp; Executor.Compiled ]);
  match
    ( Mx.Registry.profile_totals reg ~backend:"interp",
      Mx.Registry.profile_totals reg ~backend:"compiled" )
  with
  | Some (ci, oi, ri), Some (cc, oc, rc) ->
      Alcotest.(check int) "runs" ri rc;
      Alcotest.(check int) "overhead sim" oi.Mx.Profile.sim_ns oc.Mx.Profile.sim_ns;
      Array.iteri
        (fun i (c : Mx.Profile.cell) ->
          Alcotest.(check int) (Printf.sprintf "op %d count" i) c.Mx.Profile.count
            cc.(i).Mx.Profile.count;
          Alcotest.(check int) (Printf.sprintf "op %d sim_ns" i) c.Mx.Profile.sim_ns
            cc.(i).Mx.Profile.sim_ns)
        ci;
      Alcotest.(check bool) "commands were profiled" true
        (Array.exists (fun (c : Mx.Profile.cell) -> c.Mx.Profile.count > 0) ci)
  | _ -> Alcotest.fail "a backend left no profile"

(* ------------------------------------------------------------------ *)
(* Prometheus exposition lint                                          *)
(* ------------------------------------------------------------------ *)

(* A small checker for the text exposition format (v0.0.4): every line
   is a # HELP/# TYPE header or a sample; every family is declared by
   exactly one HELP+TYPE pair before its samples; a family's samples
   are contiguous; metric names are legal; label blocks parse with
   properly quoted and escaped values. *)
let lint_prom exposition =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let name_ok n =
    n <> ""
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
           | _ -> false)
         n
  in
  let typed = Hashtbl.create 16 (* family -> kind *) in
  let helped = Hashtbl.create 16 in
  let closed = Hashtbl.create 16 (* families whose sample run ended *) in
  let last_family = ref "" in
  (* histogram children belong to the declared family *)
  let family_of n =
    let strip suffix =
      if Filename.check_suffix n suffix then
        let f = String.sub n 0 (String.length n - String.length suffix) in
        if Hashtbl.mem typed f then Some f else None
      else None
    in
    match strip "_bucket" with
    | Some f -> f
    | None -> (
        match strip "_sum" with
        | Some f -> f
        | None -> ( match strip "_count" with Some f -> f | None -> n))
  in
  (* validate one {k="v",...} label block *)
  let check_labels line block =
    let n = String.length block in
    let i = ref 0 in
    let fail msg = err "%s: %s" line msg; i := n in
    while !i < n do
      let start = !i in
      while !i < n && block.[!i] <> '=' do incr i done;
      if !i >= n then fail "label missing '='"
      else begin
        let key = String.sub block start (!i - start) in
        if not (name_ok key) then fail (Printf.sprintf "bad label name %S" key);
        incr i;
        if !i >= n || block.[!i] <> '"' then fail "label value not quoted"
        else begin
          incr i;
          let fin = ref false in
          while (not !fin) && !i < n do
            match block.[!i] with
            | '\\' ->
                if
                  !i + 1 >= n
                  || not (List.mem block.[!i + 1] [ '\\'; '"'; 'n' ])
                then fail "invalid escape in label value"
                else i := !i + 2
            | '"' ->
                fin := true;
                incr i
            | '\n' -> fail "raw newline in label value"
            | _ -> incr i
          done;
          if not !fin then fail "unterminated label value"
          else if !i < n then
            if block.[!i] = ',' then incr i else fail "junk after label value"
        end
      end
    done
  in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line > 7 && String.sub line 0 7 = "# HELP " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        let fam = try String.sub rest 0 (String.index rest ' ') with Not_found -> rest in
        if not (name_ok fam) then err "%s: bad family name" line;
        if Hashtbl.mem helped fam then err "%s: duplicate HELP" line;
        Hashtbl.replace helped fam ()
      end
      else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
        | [ fam; kind ] ->
            if not (name_ok fam) then err "%s: bad family name" line;
            if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary" ]) then
              err "%s: unknown type %S" line kind;
            if Hashtbl.mem typed fam then err "%s: duplicate TYPE" line;
            if not (Hashtbl.mem helped fam) then err "%s: TYPE without HELP" line;
            Hashtbl.replace typed fam kind
        | _ -> err "%s: malformed TYPE line" line
      end
      else if line.[0] = '#' then err "%s: unknown comment form" line
      else begin
        (* sample: name[{labels}] value *)
        let brace = String.index_opt line '{' in
        let name, rest =
          match brace with
          | Some i -> (String.sub line 0 i, String.sub line i (String.length line - i))
          | None -> (
              match String.index_opt line ' ' with
              | Some i ->
                  (String.sub line 0 i, String.sub line i (String.length line - i))
              | None -> (line, ""))
        in
        if not (name_ok name) then err "%s: bad metric name" line;
        let fam = family_of name in
        if not (Hashtbl.mem typed fam) then err "%s: sample without TYPE" line;
        if Hashtbl.mem closed fam then err "%s: family %s not contiguous" line fam;
        if fam <> !last_family then begin
          if !last_family <> "" then Hashtbl.replace closed !last_family ();
          last_family := fam
        end;
        (match brace with
        | Some _ -> (
            match String.rindex_opt rest '}' with
            | None -> err "%s: unterminated label block" line
            | Some j ->
                check_labels line (String.sub rest 1 (j - 1));
                let v = String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) in
                if v = "" || float_of_string_opt v = None then
                  err "%s: bad sample value %S" line v)
        | None ->
            let v = String.trim rest in
            if v = "" || float_of_string_opt v = None then
              err "%s: bad sample value %S" line v)
      end)
    (String.split_on_char '\n' exposition);
  List.rev !errors

let test_prom_exposition () =
  (* a registry exercising every metric kind, plus label values that
     need escaping (a backend name and opcode names with quotes,
     backslashes and newlines) *)
  let reg = Mx.install ~tick_ns:100 () in
  Fun.protect
    ~finally:(fun () -> ignore (Mx.uninstall ()))
    (fun () ->
      Mx.incr "lint.counter";
      Mx.gauge_set "lint-gauge.dots" 7;
      Mx.observe "lint.lat" 3;
      Mx.observe "lint.lat" 3_000;
      Mx.Registry.sample reg "lint.series" ~now_ns:0 1;
      let run =
        Option.get (Mx.profile_begin ~backend:"we\"ird\\back\nend" ~container:0 ~sim_ns:0)
      in
      Mx.profile_step run ~opcode:3 ~sim_ns:10;
      Mx.profile_end run ~sim_ns:20);
  let text =
    Mx.Registry.to_prom ~opcode_name:(fun i -> Printf.sprintf "op\"%d\"\\n" i) reg
  in
  (match lint_prom text with
  | [] -> ()
  | errs -> Alcotest.failf "exposition lint:\n%s" (String.concat "\n" errs));
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "backend label escaped" true
    (contains text "backend=\"we\\\"ird\\\\back\\nend\"");
  Alcotest.(check bool) "HELP emitted" true (contains text "# HELP hipec_lint_counter ")

(* and the real thing: the policy scenario's exposition must lint *)
let test_prom_scenario_lints () =
  let reg = run_scenario_under_registry "policy" in
  match lint_prom (Mx.Registry.to_prom reg) with
  | [] -> ()
  | errs -> Alcotest.failf "exposition lint:\n%s" (String.concat "\n" errs)

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "kinds and lookups" `Quick test_registry_kinds;
          Alcotest.test_case "series downsampling" `Quick test_series_downsampling;
          Alcotest.test_case "zero cost when disabled" `Quick test_zero_cost_when_disabled;
        ] );
      ( "percentiles",
        Alcotest.test_case "handworked" `Quick test_percentile_handworked
        :: qc [ prop_percentile_vs_oracle ] );
      ( "boundaries",
        [
          Alcotest.test_case "fixed histogram top edge" `Quick test_fixed_histogram_top_edge;
          Alcotest.test_case "log histogram bucket edges" `Quick
            test_log_histogram_bucket_edges;
          Alcotest.test_case "trace fault latency top edge" `Quick
            test_trace_fault_latency_top_edge;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seeded snapshot byte-stable" `Quick test_snapshot_deterministic ] );
      ( "exposition",
        [
          Alcotest.test_case "format lints with escaping" `Quick test_prom_exposition;
          Alcotest.test_case "policy scenario lints" `Quick test_prom_scenario_lints;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "boundary-timer attribution" `Quick test_profiler_attribution;
          Alcotest.test_case "backends agree on policy scenario" `Quick
            (check_backends_agree "policy");
          Alcotest.test_case "backends agree on join-small" `Quick
            (check_backends_agree "join-small");
        ] );
    ]
