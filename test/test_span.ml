(* Span reconstruction: the tiling invariant (segments sum exactly to
   each fault's recorded latency), online/offline equivalence (spans
   built live through [Trace.set_consumer] digest-identically to spans
   rebuilt from the recorded stream), cross-backend digest identity on
   every golden scenario, and the zero-cost-when-disabled guard. *)

open Hipec_trace
open Hipec_workloads
open Hipec_core

let small_cfg =
  { Trace_run.default_policy_cfg with Trace_run.npages = 64; frames = 16; count = 800 }

let record_ok sc =
  match Trace_run.record sc with Ok r -> r | Error e -> Alcotest.fail e

(* Record [sc] with an online span builder installed as the collector's
   consumer; returns the live builder alongside the recording, so tests
   can compare it against an offline rebuild of the same stream. *)
let record_online sc =
  let b = Span.create () in
  let c = Trace.start ~store:true () in
  Trace.set_consumer (Some (Span.feed b));
  let result = try Trace_run.run_scenario sc with e -> ignore (Trace.stop ()); raise e in
  ignore (Trace.stop ());
  match result with
  | Error e -> Alcotest.fail e
  | Ok () -> (b, Trace.Recorded.of_collector c ~meta:[])

let with_backend b f =
  let saved = Executor.default_backend () in
  Executor.set_default_backend b;
  Fun.protect ~finally:(fun () -> Executor.set_default_backend saved) f

let fault_events (r : Trace.Recorded.t) =
  Array.fold_left
    (fun n ev ->
      match ev.Event.payload with Event.Fault _ -> n + 1 | _ -> n)
    0 r.Trace.Recorded.events

(* The structural invariants every span must satisfy on top of the
   exact-sum check the builder already enforces internally. *)
let check_span_invariants name (s : Span.t) =
  let n = Array.length s.Span.segments in
  Alcotest.(check bool) (name ^ ": span has segments") true (n > 0 || s.Span.latency_ns = 0);
  let sum = Array.fold_left (fun a seg -> a + Span.seg_dur_ns seg) 0 s.Span.segments in
  Alcotest.(check int)
    (Printf.sprintf "%s: fault %d segments sum to latency" name s.Span.index)
    s.Span.latency_ns sum;
  (* contiguous tiling, left to right *)
  let pos = ref s.Span.start_ns in
  Array.iter
    (fun seg ->
      Alcotest.(check int)
        (Printf.sprintf "%s: fault %d tiling is gapless" name s.Span.index)
        !pos seg.Span.seg_start_ns;
      Alcotest.(check bool)
        (Printf.sprintf "%s: fault %d segment is forward" name s.Span.index)
        true (seg.Span.seg_stop_ns > seg.Span.seg_start_ns);
      pos := seg.Span.seg_stop_ns)
    s.Span.segments;
  if n > 0 then
    Alcotest.(check int)
      (Printf.sprintf "%s: fault %d tiling reaches stop" name s.Span.index)
      s.Span.stop_ns !pos;
  (* per-kind rollup agrees with the segments *)
  let by_kind = Span.by_kind_ns s in
  Alcotest.(check int)
    (Printf.sprintf "%s: fault %d by_kind_ns sums to latency" name s.Span.index)
    s.Span.latency_ns
    (Array.fold_left ( + ) 0 by_kind);
  (* phases cover the same window with the same segment count *)
  let phases = Span.phases s in
  let phase_segs = List.fold_left (fun a (_, _, _, k) -> a + k) 0 phases in
  Alcotest.(check int)
    (Printf.sprintf "%s: fault %d phases cover all segments" name s.Span.index)
    n phase_segs

let check_builder name (r : Trace.Recorded.t) b =
  Alcotest.(check int) (name ^ ": one span per fault") (fault_events r)
    (Span.fault_count b);
  Array.iter (check_span_invariants name) (Span.spans b);
  let agg = Span.Agg.compute (Span.spans b) in
  let row_total = List.fold_left (fun a r -> a + r.Span.Agg.total_ns) 0 agg.Span.Agg.rows in
  Alcotest.(check int) (name ^ ": agg rows sum to total latency")
    agg.Span.Agg.total_latency_ns row_total

(* --- exact-sum tiling over recorded scenarios ----------------------- *)

let scenario_names = "policy" :: Trace_run.named_scenarios

let test_tiling name () =
  let sc =
    match Trace_run.scenario_of_name name with
    | Some sc -> sc
    | None -> Alcotest.fail ("unknown scenario " ^ name)
  in
  let r = record_ok sc in
  check_builder name r (Span.of_events r.Trace.Recorded.events)

let test_tiling_small () =
  let r = record_ok (Trace_run.Policy small_cfg) in
  let b = Span.of_events r.Trace.Recorded.events in
  check_builder "small" r b;
  Alcotest.(check bool) "small scenario produced faults" true (Span.fault_count b > 0)

(* --- golden recordings gain spans for free -------------------------- *)

let golden_dir =
  if Sys.file_exists "golden/digests.txt" then "golden" else "test/golden"

let golden_traces () =
  Sys.readdir golden_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".trace")
  |> List.sort compare

let test_golden_trace file () =
  match Trace.Recorded.load ~path:(Filename.concat golden_dir file) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let b = Span.of_events r.Trace.Recorded.events in
      check_builder file r b

(* --- online == offline ---------------------------------------------- *)

let test_online_offline name () =
  let sc =
    match Trace_run.scenario_of_name name with
    | Some sc -> sc
    | None -> Alcotest.fail ("unknown scenario " ^ name)
  in
  let online, r = record_online sc in
  let offline = Span.of_events r.Trace.Recorded.events in
  Alcotest.(check int) (name ^ ": same fault count") (Span.fault_count offline)
    (Span.fault_count online);
  Alcotest.(check string)
    (name ^ ": online and offline span digests agree")
    (Trace.digest_hex (Span.digest offline))
    (Trace.digest_hex (Span.digest online))

(* qcheck: the same property on random checker-accepted policy runs *)
let cfg_gen =
  QCheck.Gen.(
    let* pattern = oneofl Trace_run.pattern_names in
    let* policy = oneofl Trace_run.policy_names in
    let* npages = 16 -- 96 in
    let* frames = 8 -- 48 in
    let* count = 200 -- 900 in
    let+ seed = 1 -- 10_000 in
    { Trace_run.pattern; npages; frames; policy; count; seed })

let cfg_print (c : Trace_run.policy_cfg) =
  Printf.sprintf "{pattern=%s; policy=%s; npages=%d; frames=%d; count=%d; seed=%d}"
    c.Trace_run.pattern c.Trace_run.policy c.Trace_run.npages c.Trace_run.frames
    c.Trace_run.count c.Trace_run.seed

let prop_online_offline =
  QCheck.Test.make ~count:12 ~name:"random policy runs: online digest = offline digest"
    (QCheck.make ~print:cfg_print cfg_gen) (fun cfg ->
      let online, r = record_online (Trace_run.Policy cfg) in
      let offline = Span.of_events r.Trace.Recorded.events in
      Array.iter (check_span_invariants "qcheck") (Span.spans offline);
      Int64.equal (Span.digest online) (Span.digest offline)
      && Span.fault_count online = Span.fault_count offline)

(* --- cross-backend digest identity ---------------------------------- *)

let span_digest_on backend sc =
  with_backend backend (fun () ->
      let r = record_ok sc in
      Span.digest (Span.of_events r.Trace.Recorded.events))

let test_backends name () =
  let sc =
    match Trace_run.scenario_of_name name with
    | Some sc -> sc
    | None -> Alcotest.fail ("unknown scenario " ^ name)
  in
  Alcotest.(check string)
    (name ^ ": Interp and Compiled span digests agree")
    (Trace.digest_hex (span_digest_on Executor.Interp sc))
    (Trace.digest_hex (span_digest_on Executor.Compiled sc))

(* --- exporters stay well-formed ------------------------------------- *)

let test_exporters () =
  let r = record_ok (Trace_run.Policy small_cfg) in
  let b = Span.of_events r.Trace.Recorded.events in
  let spans = Span.spans b in
  let pf = Span.to_perfetto spans in
  Alcotest.(check bool) "perfetto export is non-trivial" true
    (String.length pf > 2 && pf.[0] = '{');
  let json = Span.to_json ~include_spans:true b in
  Alcotest.(check bool) "json export mentions the digest" true
    (String.length json > 2 && json.[0] = '{');
  (* every span renders *)
  Array.iter (fun s -> ignore (Format.asprintf "%a" Span.pp_span s)) spans;
  ignore (Format.asprintf "%a" Span.Agg.pp (Span.Agg.compute spans))

(* --- zero cost when disabled ---------------------------------------- *)

(* The emit contract: call sites guard on [Trace.on ()], a single
   mutable-bool read.  With no collector installed the guarded pattern
   must not allocate at all — this pins the spans layer (and any future
   consumer) to the same bargain. *)
let test_disabled_alloc () =
  Alcotest.(check bool) "no collector installed" false (Trace.on ());
  Trace.set_consumer None;
  (* a no-op without a collector *)
  let probe () =
    for i = 0 to 9_999 do
      if Trace.on () then Trace.fault ~task:0 ~vpn:i ~kind:Event.Soft ~latency_ns:i
    done
  in
  probe ();
  (* warmed up *)
  let w0 = Gc.minor_words () in
  probe ();
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.)) "guarded emit allocates nothing when disabled" 0.
    (w1 -. w0)

let () =
  Alcotest.run "span"
    [
      ( "tiling",
        Alcotest.test_case "small policy run" `Quick test_tiling_small
        :: List.map
             (fun name -> Alcotest.test_case name `Quick (test_tiling name))
             scenario_names );
      ( "golden",
        List.map
          (fun file -> Alcotest.test_case file `Quick (test_golden_trace file))
          (golden_traces ()) );
      ( "online-offline",
        List.map
          (fun name -> Alcotest.test_case name `Quick (test_online_offline name))
          scenario_names
        @ [ QCheck_alcotest.to_alcotest prop_online_offline ] );
      ( "backends",
        List.map
          (fun name -> Alcotest.test_case name `Quick (test_backends name))
          scenario_names );
      ( "exporters", [ Alcotest.test_case "perfetto and json" `Quick test_exporters ] );
      ( "disabled", [ Alcotest.test_case "allocation-free" `Quick test_disabled_alloc ] );
    ]
