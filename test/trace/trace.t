Recording the same scenario twice under the same seed produces
byte-identical digests:

  $ hipec trace record --pages 64 --frames 16 --count 800 -o a.trace
  recorded 4884 events, digest 95d45b8211e44c6f -> a.trace

  $ hipec trace record --pages 64 --frames 16 --count 800 -o b.trace
  recorded 4884 events, digest 95d45b8211e44c6f -> b.trace

  $ hipec trace diff a.trace b.trace
  identical: 4884 events, digest 95d45b8211e44c6f

Replay re-executes the recorded access stream against a fresh kernel
and reproduces the digest exactly:

  $ hipec trace replay a.trace
  recorded digest 95d45b8211e44c6f (4884 events)
  replayed digest 95d45b8211e44c6f (4884 events)
  replay reproduces the recording

A different seed changes the disk geometry draw, and diff pinpoints the
first diverging event (and exits nonzero):

  $ hipec trace record --pages 64 --frames 16 --count 800 --seed 3 -o c.trace
  recorded 4884 events, digest a3a28b78fee420d9 -> c.trace

  $ hipec trace diff a.trace c.trace
  first divergence at event 7:
    recorded       7 8.39ms pagein   task=0 block=0
    replayed       7 4.81ms pagein   task=0 block=0
  [1]

The binary recording exports to JSON, with the scenario pinned in meta:

  $ hipec trace export a.trace | head -1 | cut -c 1-78
  {"meta":{"start_vpn":"16","kind":"policy","pattern":"cyclic","pages":"64","fra

Workload scenarios record and replay deterministically too:

  $ hipec trace record --scenario aim-small -o aim.trace
  recorded 16995 events, digest d1e6cc7a7e21e77c -> aim.trace

  $ hipec trace replay aim.trace | tail -1
  replay reproduces the recording

An unknown scenario is rejected:

  $ hipec trace record --scenario warp-drive
  unknown scenario "warp-drive" (policy|join-small|aim-small|chaos-smoke|storm-smoke)
  [2]

The bench harness collects a stream across a whole figure with --trace:

  $ hipec-bench table4 --trace
  ------------------------------------------------------------------------
  Table 4: mechanism comparison (paper section 5.1)
  ------------------------------------------------------------------------
    Null System Call                        19 usec   (paper: 19 usec)
    Null IPC Call                          292 usec   (paper: 292 usec)
    Simple HiPEC page fault overhead       150 nsec   (paper: ~150 nsec)
    (fast path interpreted 3 commands: Comp, DeQueue, Return)
  
  ------------------------------------------------------------------------
  Trace collector summary (--trace)
  ------------------------------------------------------------------------
  trace: 8 events, digest 437637bc010dda73
    counts: access 2, fault 2, grant 1, policy 1, map 2
    fault latency (1ms buckets): [2 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 | >16ms 0]
  

