(* Backend equivalence: the compile-once closure backend must be
   observationally identical to the interpreter — bit-identical FNV-1a
   trace digests, event counts and fault counts — on every golden
   scenario and on randomly generated checker-accepted programs.

   The random programs are built from statically valid snippets (the
   security checker accepts every one), but they are free to fail at
   run time: DeQueue from an emptied queue, Release of a still-bound
   page, division by zero.  Those runs demote the container and fall
   back to the default policy — on both backends, at the same event,
   with the same reason string, or the digests diverge.  The same
   property pins the Release/grant bug fixes: no checker-accepted
   program may ever surface a kernel [Invalid_argument] (reported by
   the executor as "kernel check failed") from the executor services. *)

open Hipec_vm
open Hipec_core
open Hipec_trace
module Trace_run = Hipec_workloads.Trace_run
module Std = Operand.Std

let with_backend backend f =
  let saved = Executor.default_backend () in
  Executor.set_default_backend backend;
  Fun.protect ~finally:(fun () -> Executor.set_default_backend saved) f

let count_faults events =
  Array.fold_left
    (fun acc ev ->
      match ev.Event.payload with Event.Fault _ -> acc + 1 | _ -> acc)
    0 events

(* ------------------------------------------------------------------ *)
(* Golden scenarios under both backends                                *)
(* ------------------------------------------------------------------ *)

let golden_file =
  if Sys.file_exists "golden/digests.txt" then "golden/digests.txt"
  else "test/golden/digests.txt"

let read_golden () =
  let ic = open_in golden_file in
  let rec go acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else
          match String.split_on_char ' ' line with
          | [ name; digest; events ] -> go ((name, digest, int_of_string events) :: acc)
          | _ -> failwith (golden_file ^ ": malformed line: " ^ line))
  in
  go []

let record_with backend scenario =
  with_backend backend (fun () ->
      match Trace_run.record scenario with Error e -> Alcotest.fail e | Ok r -> r)

let check_golden_equivalence (name, digest, _events) () =
  let scenario =
    match Trace_run.scenario_of_name name with
    | Some s -> s
    | None -> Alcotest.fail ("unknown golden scenario " ^ name)
  in
  let ri = record_with Executor.Interp scenario in
  let rc = record_with Executor.Compiled scenario in
  Alcotest.(check string)
    (name ^ ": interpreter matches the golden digest")
    digest
    (Trace.digest_hex ri.Trace.Recorded.digest);
  Alcotest.(check string)
    (name ^ ": compiled digest == interp digest")
    (Trace.digest_hex ri.Trace.Recorded.digest)
    (Trace.digest_hex rc.Trace.Recorded.digest);
  Alcotest.(check int)
    (name ^ ": event count")
    (Array.length ri.Trace.Recorded.events)
    (Array.length rc.Trace.Recorded.events);
  Alcotest.(check int)
    (name ^ ": fault count")
    (count_faults ri.Trace.Recorded.events)
    (count_faults rc.Trace.Recorded.events)

(* ------------------------------------------------------------------ *)
(* Random checker-accepted programs                                    *)
(* ------------------------------------------------------------------ *)

(* user operand slots every generated program declares *)
let x_slot = Std.first_user
let y_slot = Std.first_user + 1
let b1_slot = Std.first_user + 2
let b2_slot = Std.first_user + 3
let r_slot = Std.first_user + 4 (* Release count *)
let uq_slot = Std.first_user + 5 (* a user-declared queue *)
let up_slot = Std.first_user + 6 (* a second page register *)
let d_slot = Std.first_user + 7 (* never-written divisor: analysis proves it nonzero *)
let helper_event = 2

(* Statically valid program snippets; parameters are small ints the
   builder maps onto opcodes, queues and queue ends. *)
type tpl =
  | Arith of int
  | Branch of int
  | Logic of int
  | Emptyq_branch of int
  | Request of int
  | Release_count
  | Complex of int * int (* fifo/lru/mru, queue *)
  | Shuffle of int * int * int (* src queue, dst queue, end *)
  | Release_on_queue of int * int (* src queue, dst queue *)
  | Find_mark of int * int (* bit action, bit which *)
  | Activate_helper
  | Safe_div of int
      (* Div/Rem by a never-written operand: install-time analysis
         proves the divisor nonzero, so the compiled backend fuses it
         into the surrounding arith chain — the digest must not move *)

type desc = {
  x0 : int;
  y0 : int;
  r0 : int;
  d0 : int; (* install-time divisor value, >= 1 *)
  b0 : bool;
  frames : int;
  npages : int;
  tpls : tpl list;
  accesses : (int * bool) array; (* page, write *)
}

let arith_ops =
  Opcode.Arith_op.
    [| Add; Sub; Mul; Div; Rem; Inc; Dec |]

let comp_ops = Opcode.Comp_op.[| Gt; Lt; Eq; Ne; Ge; Le |]
let logic_ops = Opcode.Logic_op.[| And; Or; Xor; Not |]

let queue_slot = function
  | 0 -> Std.free_queue
  | 1 -> Std.inactive_queue
  | 2 -> Std.active_queue
  | _ -> uq_slot

let queue_label = function 0 -> "free" | 1 -> "inact" | 2 -> "act" | _ -> "user"
let qend = function 0 -> Opcode.Queue_end.Head | _ -> Opcode.Queue_end.Tail

let tpl_name = function
  | Arith k -> Printf.sprintf "arith:%s" (Opcode.Arith_op.name arith_ops.(k mod 7))
  | Branch k -> Printf.sprintf "branch:%s" (Opcode.Comp_op.name comp_ops.(k mod 6))
  | Logic k -> Printf.sprintf "logic:%s" (Opcode.Logic_op.name logic_ops.(k mod 4))
  | Emptyq_branch q -> Printf.sprintf "emptyq:%s" (queue_label (q mod 4))
  | Request k -> Printf.sprintf "request:%d" (1 + (k mod 3))
  | Release_count -> "release-count"
  | Complex (w, q) ->
      Printf.sprintf "%s:%s"
        (match w mod 3 with 0 -> "fifo" | 1 -> "lru" | _ -> "mru")
        (queue_label (q mod 4))
  | Shuffle (s, d, e) ->
      Printf.sprintf "shuffle:%s->%s/%d" (queue_label (s mod 4)) (queue_label (d mod 4))
        (e mod 2)
  | Release_on_queue (s, d) ->
      Printf.sprintf "release-on:%s->%s" (queue_label (s mod 4)) (queue_label (d mod 4))
  | Find_mark (a, w) -> Printf.sprintf "find-mark:%d.%d" (a mod 2) (w mod 2)
  | Activate_helper -> "activate"
  | Safe_div k -> Printf.sprintf "safe-div:%s" (if k mod 2 = 0 then "Div" else "Rem")

let items_of_tpl n tpl =
  let open Program.Asm in
  let l s = Printf.sprintf "t%d_%s" n s in
  match tpl with
  | Arith k -> [ Op (Instr.Arith (x_slot, y_slot, arith_ops.(k mod 7))) ]
  | Branch k ->
      [
        Op (Instr.Comp (x_slot, y_slot, comp_ops.(k mod 6)));
        Jump_to (l "else");
        Op (Instr.Arith (x_slot, x_slot, Opcode.Arith_op.Inc));
        Jump_to (l "end");
        Label (l "else");
        Op (Instr.Arith (y_slot, y_slot, Opcode.Arith_op.Inc));
        Label (l "end");
      ]
  | Logic k ->
      [
        Op (Instr.Logic (b1_slot, b2_slot, logic_ops.(k mod 4)));
        Jump_to (l "end");
        Label (l "end");
      ]
  | Emptyq_branch q ->
      [
        Op (Instr.Emptyq (queue_slot (q mod 4)));
        Jump_to (l "ne");
        Jump_to (l "end");
        Label (l "ne");
        Op (Instr.Arith (x_slot, x_slot, Opcode.Arith_op.Dec));
        Label (l "end");
      ]
  | Request k ->
      [ Op (Instr.Request (1 + (k mod 3))); Jump_to (l "end"); Label (l "end") ]
  | Release_count -> [ Op (Instr.Release r_slot); Jump_to (l "end"); Label (l "end") ]
  | Complex (w, q) ->
      let instr =
        let qs = queue_slot (q mod 4) in
        match w mod 3 with
        | 0 -> Instr.Fifo qs
        | 1 -> Instr.Lru qs
        | _ -> Instr.Mru qs
      in
      [ Op instr; Jump_to (l "end"); Label (l "end") ]
  | Shuffle (s, d, e) ->
      let src = queue_slot (s mod 4) and dst = queue_slot (d mod 4) in
      [
        Op (Instr.Emptyq src);
        Jump_to (l "go");
        Jump_to (l "end");
        Label (l "go");
        Op (Instr.Dequeue (Std.page_reg, src, Opcode.Queue_end.Head));
        Op (Instr.Enqueue (Std.page_reg, dst, qend (e mod 2)));
        Label (l "end");
      ]
  | Release_on_queue (s, d) ->
      let src = queue_slot (s mod 4) and dst = queue_slot (d mod 4) in
      [
        Op (Instr.Emptyq src);
        Jump_to (l "go");
        Jump_to (l "end");
        Label (l "go");
        Op (Instr.Dequeue (up_slot, src, Opcode.Queue_end.Head));
        Op (Instr.Enqueue (up_slot, dst, Opcode.Queue_end.Tail));
        Op (Instr.Release up_slot);
        Jump_to (l "end");
        Label (l "end");
      ]
  | Find_mark (a, w) ->
      [
        Op (Instr.Find (up_slot, Std.fault_va));
        Jump_to (l "nf");
        Op
          (Instr.Set
             ( up_slot,
               (if a mod 2 = 0 then Opcode.Bit_action.Set_bit
                else Opcode.Bit_action.Reset_bit),
               if w mod 2 = 0 then Opcode.Bit_which.Reference
               else Opcode.Bit_which.Modify ));
        Label (l "nf");
      ]
  | Activate_helper -> [ Op (Instr.Activate helper_event) ]
  | Safe_div k ->
      let op = if k mod 2 = 0 then Opcode.Arith_op.Div else Opcode.Arith_op.Rem in
      [
        Op (Instr.Arith (x_slot, x_slot, Opcode.Arith_op.Inc));
        Op (Instr.Arith (x_slot, d_slot, op));
        Op (Instr.Arith (y_slot, x_slot, Opcode.Arith_op.Add));
      ]

(* every handler ends with the harness tail: grab a free slot (evicting
   FIFO from the active queue if none) and return it *)
let tail_items =
  let open Program.Asm in
  [
    Op (Instr.Emptyq Std.free_queue);
    Jump_to "tail_take";
    Op (Instr.Fifo Std.active_queue);
    Jump_to "tail_take";
    Label "tail_take";
    Op (Instr.Dequeue (Std.page_reg, Std.free_queue, Opcode.Queue_end.Head));
    Op (Instr.Return Std.page_reg);
  ]

let build_program desc =
  let body = List.concat (List.mapi items_of_tpl desc.tpls) in
  let page_fault =
    match Program.Asm.assemble (body @ tail_items) with
    | Ok code -> code
    | Error e -> failwith ("generated program failed to assemble: " ^ e)
  in
  Program.make
    [
      (Events.page_fault, page_fault);
      (Events.reclaim_frame, [| Instr.Return Std.null |]);
      ( helper_event,
        [| Instr.Arith (y_slot, y_slot, Opcode.Arith_op.Inc); Instr.Return Std.null |] );
    ]

(* fresh mutable operands per run, so the two backends cannot observe
   each other's state *)
let spec_of desc policy =
  {
    (Api.default_spec ~policy ~min_frames:desc.frames) with
    Api.extra_operands =
      [
        (x_slot, Operand.Int (ref desc.x0));
        (y_slot, Operand.Int (ref desc.y0));
        (b1_slot, Operand.Bool (ref desc.b0));
        (b2_slot, Operand.Bool (ref (not desc.b0)));
        (r_slot, Operand.Int (ref desc.r0));
        (uq_slot, Operand.Queue (Page_queue.create "user-q"));
        (up_slot, Operand.Page (ref None));
        (d_slot, Operand.Int (ref desc.d0));
      ];
  }

type observation =
  | Install_error of string
  | Ran of { digest : string; events : int; faults : int; demoted : string option }

let run_case backend desc =
  with_backend backend @@ fun () ->
  let c = Trace.start ~store:true () in
  let tear_down () = ignore (Trace.stop ()) in
  match
    let config =
      {
        Kernel.default_config with
        Kernel.total_frames = max 256 (4 * desc.frames);
        hipec_kernel = true;
      }
    in
    let k = Kernel.create ~config () in
    let sys = Api.init ~start_checker:false k in
    let task = Kernel.create_task k () in
    Result.map
      (fun (region, container) ->
        Array.iter
          (fun (page, write) ->
            Kernel.access_vpn k task ~vpn:(region.Vm_map.start_vpn + page) ~write)
          desc.accesses;
        Kernel.drain_io k;
        Container.degraded_reason container)
      (Api.vm_allocate_hipec sys task ~npages:desc.npages
         (spec_of desc (build_program desc)))
  with
  | exception e ->
      tear_down ();
      raise e
  | Error e ->
      tear_down ();
      Install_error e
  | Ok demoted ->
      tear_down ();
      Ran
        {
          digest = Trace.digest_hex (Trace.digest c);
          events = Array.length (Trace.events c);
          faults = count_faults (Trace.events c);
          demoted;
        }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let print_desc d =
  Printf.sprintf "frames=%d npages=%d x0=%d y0=%d r0=%d d0=%d b0=%b accesses=%d [%s]"
    d.frames d.npages d.x0 d.y0 d.r0 d.d0 d.b0 (Array.length d.accesses)
    (String.concat "; " (List.map tpl_name d.tpls))

let desc_gen st =
  let open QCheck.Gen in
  let frames = 4 + int_bound 6 st in
  let npages = frames + 1 + int_bound 20 st in
  let tpl _ =
    match int_bound 11 st with
    | 0 -> Arith (int_bound 100 st)
    | 1 -> Branch (int_bound 100 st)
    | 2 -> Logic (int_bound 100 st)
    | 3 -> Emptyq_branch (int_bound 3 st)
    | 4 -> Request (int_bound 100 st)
    | 5 -> Release_count
    | 6 -> Complex (int_bound 100 st, int_bound 3 st)
    | 7 -> Shuffle (int_bound 3 st, int_bound 3 st, int_bound 1 st)
    | 8 -> Release_on_queue (int_bound 3 st, int_bound 3 st)
    | 9 -> Find_mark (int_bound 1 st, int_bound 1 st)
    | 10 -> Safe_div (int_bound 100 st)
    | _ -> Activate_helper
  in
  let count = 30 + int_bound 120 st in
  {
    x0 = int_bound 20 st - 10;
    y0 = int_bound 8 st;
    r0 = int_bound 2 st;
    d0 = 1 + int_bound 8 st;
    b0 = bool st;
    frames;
    npages;
    tpls = List.init (1 + int_bound 5 st) tpl;
    accesses = Array.init count (fun _ -> (int_bound (npages - 1) st, bool st));
  }

(* the executor reports a kernel Invalid_argument as "kernel check
   failed"; a checker-accepted program must never trip one *)
let check_no_kernel_failure backend = function
  | Ran { demoted = Some reason; _ } when contains ~sub:"kernel check failed" reason ->
      QCheck.Test.fail_reportf
        "checker-accepted program tripped a kernel check under %s: %s"
        (Executor.backend_name backend) reason
  | _ -> ()

let equivalence_prop =
  QCheck.Test.make
    ~name:"compiled backend matches the interpreter on random programs" ~count:120
    (QCheck.make ~print:print_desc desc_gen)
    (fun desc ->
      let a = run_case Executor.Interp desc in
      let b = run_case Executor.Compiled desc in
      check_no_kernel_failure Executor.Interp a;
      check_no_kernel_failure Executor.Compiled b;
      match (a, b) with
      | Install_error ea, Install_error eb ->
          if ea <> eb then
            QCheck.Test.fail_reportf "install errors differ@.interp:   %s@.compiled: %s"
              ea eb;
          true
      | Ran ra, Ran rb ->
          if ra.digest <> rb.digest || ra.events <> rb.events || ra.faults <> rb.faults
          then
            QCheck.Test.fail_reportf
              "backends diverged@.interp:   digest=%s events=%d faults=%d demoted=%s@.compiled: \
               digest=%s events=%d faults=%d demoted=%s"
              ra.digest ra.events ra.faults
              (Option.value ra.demoted ~default:"-")
              rb.digest rb.events rb.faults
              (Option.value rb.demoted ~default:"-");
          (match (ra.demoted, rb.demoted) with
          | Some x, Some y when x <> y ->
              QCheck.Test.fail_reportf "demotion reasons differ@.interp:   %s@.compiled: %s"
                x y
          | Some r, None | None, Some r ->
              QCheck.Test.fail_reportf "only one backend demoted: %s" r
          | _ -> ());
          true
      | Install_error e, Ran _ ->
          QCheck.Test.fail_reportf "interp rejected install, compiled ran: %s" e
      | Ran _, Install_error e ->
          QCheck.Test.fail_reportf "compiled rejected install, interp ran: %s" e)

(* ------------------------------------------------------------------ *)
(* Superinstruction fusion                                             *)
(* ------------------------------------------------------------------ *)

module Mx = Hipec_metrics.Metrics

let with_fusion flag f =
  let saved = !Compiled.fusion_enabled in
  Compiled.fusion_enabled := flag;
  Fun.protect ~finally:(fun () -> Compiled.fusion_enabled := saved) f

let obs_str = function
  | Install_error e -> "install error: " ^ e
  | Ran r ->
      Printf.sprintf "digest=%s events=%d faults=%d demoted=%s" r.digest r.events
        r.faults
        (Option.value r.demoted ~default:"-")

(* The fused closures must charge exactly the simulated costs of their
   constituent commands: fused compiled, unfused compiled and the
   interpreter all record bit-identical trace digests (every Engine
   charge is on the digest via the event timestamps). *)
let fusion_equivalence_prop =
  QCheck.Test.make
    ~name:"fused == unfused == interp on random programs" ~count:80
    (QCheck.make ~print:print_desc desc_gen)
    (fun desc ->
      let i = run_case Executor.Interp desc in
      let f = with_fusion true (fun () -> run_case Executor.Compiled desc) in
      let u = with_fusion false (fun () -> run_case Executor.Compiled desc) in
      if f <> u then
        QCheck.Test.fail_reportf
          "fusion changed the observation@.fused:   %s@.unfused: %s" (obs_str f)
          (obs_str u);
      if f <> i then
        QCheck.Test.fail_reportf
          "compiled diverged from interp@.compiled: %s@.interp:   %s" (obs_str f)
          (obs_str i);
      true)

(* Per-opcode *simulated* time attribution must agree cell for cell
   between the backends on random programs too (test_metrics pins the
   golden scenarios).  Profiled compiled runs execute the unfused table,
   so attribution stays per-constituent by construction — this property
   guards that design. *)
let profile_of backend desc =
  let reg = Mx.install () in
  let obs =
    Fun.protect
      ~finally:(fun () -> ignore (Mx.uninstall ()))
      (fun () -> run_case backend desc)
  in
  (obs, Mx.Registry.profile_totals reg ~backend:(Executor.backend_name backend))

let attribution_prop =
  QCheck.Test.make
    ~name:"per-opcode simulated attribution matches across backends" ~count:40
    (QCheck.make ~print:print_desc desc_gen)
    (fun desc ->
      let oi, pi = profile_of Executor.Interp desc in
      let oc, pc = profile_of Executor.Compiled desc in
      if oi <> oc then
        QCheck.Test.fail_reportf
          "profiled runs diverged@.interp:   %s@.compiled: %s" (obs_str oi)
          (obs_str oc);
      (match (oi, pi, pc) with
      | Install_error _, _, _ -> () (* nothing ran *)
      | Ran _, Some (ci, oi, ri), Some (cc, oc, rc) ->
          if ri <> rc then QCheck.Test.fail_reportf "run counts differ: %d vs %d" ri rc;
          if oi.Mx.Profile.sim_ns <> oc.Mx.Profile.sim_ns then
            QCheck.Test.fail_reportf "overhead sim_ns differs: %d vs %d"
              oi.Mx.Profile.sim_ns oc.Mx.Profile.sim_ns;
          Array.iteri
            (fun op (c : Mx.Profile.cell) ->
              if c.Mx.Profile.count <> cc.(op).Mx.Profile.count then
                QCheck.Test.fail_reportf "opcode %d count differs: %d vs %d" op
                  c.Mx.Profile.count cc.(op).Mx.Profile.count;
              if c.Mx.Profile.sim_ns <> cc.(op).Mx.Profile.sim_ns then
                QCheck.Test.fail_reportf "opcode %d sim_ns differs: %d vs %d" op
                  c.Mx.Profile.sim_ns cc.(op).Mx.Profile.sim_ns)
            ci
      | Ran _, _, _ -> QCheck.Test.fail_reportf "a backend left no profile");
      true)

(* Fusion.plan pattern recognition on hand-built command blocks. *)

let group_t : Fusion.group Alcotest.testable =
  Alcotest.testable
    (fun fmt g ->
      Format.fprintf fmt "%s@%d w%d" (Fusion.name g) (Fusion.head g) (Fusion.width g))
    ( = )

let test_plan_patterns () =
  let open Instr in
  let plan items = Fusion.plan (Array.of_list items) in
  let p = 10 and q = 11 and q2 = 12 in
  Alcotest.(check (list group_t))
    "test + else-branch jump fuses"
    [ Fusion.Test_skip { cc = 0 } ]
    (plan
       [
         Comp (1, 2, Opcode.Comp_op.Gt);
         Jump 3;
         Arith (1, 1, Opcode.Arith_op.Inc);
         Return 0;
       ]);
  Alcotest.(check (list group_t))
    "emptyq + jump fuses"
    [ Fusion.Test_skip { cc = 0 } ]
    (plan [ Emptyq q; Jump 2; Return 0 ]);
  Alcotest.(check (list group_t))
    "test without a following jump stays single" []
    (plan [ Comp (1, 2, Opcode.Comp_op.Gt); Return 0 ]);
  Alcotest.(check (list group_t))
    "three infallible ariths chain"
    [ Fusion.Arith_chain { cc = 0; len = 3 } ]
    (plan
       [
         Arith (1, 2, Opcode.Arith_op.Add);
         Arith (1, 2, Opcode.Arith_op.Sub);
         Arith (1, 1, Opcode.Arith_op.Inc);
         Return 0;
       ]);
  Alcotest.(check (list group_t))
    "div splits the chain (can fault mid-chain)"
    [ Fusion.Arith_chain { cc = 2; len = 2 } ]
    (plan
       [
         Arith (1, 2, Opcode.Arith_op.Add);
         Arith (1, 2, Opcode.Arith_op.Div);
         Arith (1, 2, Opcode.Arith_op.Sub);
         Arith (1, 2, Opcode.Arith_op.Mul);
         Return 0;
       ]);
  Alcotest.(check (list group_t))
    "analysis-proven div joins the chain"
    [ Fusion.Arith_chain { cc = 0; len = 4 } ]
    (Fusion.plan
       ~safe_div:(fun cc -> cc = 1)
       [|
         Arith (1, 2, Opcode.Arith_op.Add);
         Arith (1, 2, Opcode.Arith_op.Div);
         Arith (1, 2, Opcode.Arith_op.Sub);
         Arith (1, 2, Opcode.Arith_op.Mul);
         Return 0;
       |]);
  Alcotest.(check (list group_t))
    "dequeue/set/enqueue on one page register fuses"
    [ Fusion.Deq_enq { cc = 0; with_set = true } ]
    (plan
       [
         Dequeue (p, q, Opcode.Queue_end.Head);
         Set (p, Opcode.Bit_action.Set_bit, Opcode.Bit_which.Reference);
         Enqueue (p, q2, Opcode.Queue_end.Tail);
         Return 0;
       ]);
  Alcotest.(check (list group_t))
    "dequeue/enqueue pair fuses"
    [ Fusion.Deq_enq { cc = 0; with_set = false } ]
    (plan
       [ Dequeue (p, q, Opcode.Queue_end.Head); Enqueue (p, q2, Opcode.Queue_end.Tail) ]);
  Alcotest.(check (list group_t))
    "different page registers do not fuse" []
    (plan
       [
         Dequeue (p, q, Opcode.Queue_end.Head);
         Enqueue (p + 1, q2, Opcode.Queue_end.Tail);
       ])

let test_plan_accounting () =
  let open Instr in
  let p = 10 and q = 11 in
  let groups =
    Fusion.plan
      [|
        Dequeue (p, q, Opcode.Queue_end.Head);
        Enqueue (p, q, Opcode.Queue_end.Tail);
        Emptyq q;
        Jump 0;
      |]
  in
  Alcotest.(check (list group_t))
    "non-overlapping, program order"
    [ Fusion.Deq_enq { cc = 0; with_set = false }; Fusion.Test_skip { cc = 2 } ]
    groups;
  Alcotest.(check int) "covered counts constituents" 4 (Fusion.covered groups);
  Alcotest.(check (list (pair string int)))
    "stats keyed by pattern, stable order"
    [ ("test_skip", 1); ("deq_enq", 1) ]
    (Fusion.stats groups);
  Alcotest.(check bool) "div/rem are not fusable" false
    (Fusion.fusable_arith Opcode.Arith_op.Div
    || Fusion.fusable_arith Opcode.Arith_op.Rem)

let () =
  (* "trace:" lines pin checked-in recordings, not regenerable
     scenarios; test_golden.ml replays those on both backends *)
  let goldens =
    List.filter
      (fun (name, _, _) ->
        not (String.length name > 6 && String.sub name 0 6 = "trace:"))
      (read_golden ())
  in
  if goldens = [] then failwith (golden_file ^ " lists no scenarios");
  Alcotest.run "backend"
    [
      ( "golden equivalence",
        List.map
          (fun ((name, _, _) as g) ->
            Alcotest.test_case name `Quick (check_golden_equivalence g))
          goldens );
      ("random programs", [ QCheck_alcotest.to_alcotest equivalence_prop ]);
      ( "fusion",
        [
          Alcotest.test_case "plan patterns" `Quick test_plan_patterns;
          Alcotest.test_case "plan accounting" `Quick test_plan_accounting;
          QCheck_alcotest.to_alcotest fusion_equivalence_prop;
          QCheck_alcotest.to_alcotest attribution_prop;
        ] );
    ]
