.PHONY: all test bench examples clean quick-bench chaos oracle golden backend-bench metrics-bench storm storm-bench adversary adversary-bench spans spans-bench lint ci

all:
	dune build @all

test:
	dune runtest

chaos:
	dune exec bench/main.exe -- chaos --smoke

# the differential suite: executor vs the pure policy oracles
oracle:
	dune exec test/test_oracle.exe

# fixed-seed scenarios must reproduce the digests in test/golden/
golden:
	dune exec test/test_golden.exe

# interp vs compiled executor on the same scenarios; fails on digest
# divergence or on a compiled-speedup regression (executor-attributed
# < 1.0x anywhere, spin-heavy whole-run < 1.5x) and rewrites
# BENCH_7.json
backend-bench:
	dune exec bench/main.exe -- backend --quick

# per-scenario latency percentile tables; rewrites BENCH_4.json
metrics-bench:
	dune exec bench/main.exe -- metrics

# the multi-tenant overload storm at smoke scale (100 tenants); exits
# nonzero on a conservation break, audit violation or honest starvation
storm:
	dune exec bin/hipec_cli.exe -- storm --smoke

# storm isolation metrics under both backends; fails on digest
# instability or backend divergence and rewrites BENCH_5.json
storm-bench:
	dune exec bench/main.exe -- storm --quick

# the anomaly-witness regression gate: the seeded search must find and
# confirm a FIFO Belady anomaly, must find none against the adaptive
# policy at the same budget, and the pinned golden witness pair must
# replay digest-identically on both backends with the anomaly intact
adversary:
	dune exec bin/hipec_cli.exe -- adversary report --smoke
	dune exec bin/hipec_cli.exe -- adversary replay-witness \
	  test/golden/witness-fifo-lo.trace test/golden/witness-fifo-hi.trace

# witness search throughput and the fifo-falls/adaptive-stands gate at
# the full budget; rewrites BENCH_6.json
adversary-bench:
	dune exec bench/main.exe -- adversary

# critical-path span attribution on the storm and chaos scenarios;
# exits nonzero when the two backends disagree on the span digest
spans:
	dune exec bin/hipec_cli.exe -- spans --scenario storm-smoke --json -o SPANS.json
	dune exec bin/hipec_cli.exe -- spans --scenario chaos-smoke

# online span-building overhead and stream-identity gates; rewrites
# BENCH_8.json (spans off: event stream bit-identical; spans on:
# < 10% of the whole-run wall)
spans-bench:
	dune exec bench/main.exe -- spans --quick

# the static analyzer over every built-in policy and every pseudo-code
# example; exits nonzero on any error-severity finding
lint:
	for p in fifo lru mru clock second-chance adaptive greedy; do \
	  echo "== builtin:$$p"; \
	  dune exec bin/hipec_cli.exe -- lint --builtin $$p || exit 1; \
	done
	for f in examples/*.hp; do \
	  echo "== $$f"; \
	  dune exec bin/hipec_cli.exe -- lint $$f || exit 1; \
	done

# What CI runs: full build, the whole test suite (which includes the
# oracle, golden, storm, span and adversary suites), the policy lint
# gate, the chaos and storm acceptance checks at smoke scale, the
# adversary regression gate, the span cross-backend gate, and the
# backend equivalence benches.
ci: all test lint oracle golden chaos storm adversary spans backend-bench metrics-bench storm-bench adversary-bench spans-bench

bench:
	dune exec bench/main.exe

quick-bench:
	dune exec bench/main.exe -- --quick

examples:
	dune build @examples

clean:
	dune clean
