.PHONY: all test bench examples clean quick-bench chaos oracle golden ci

all:
	dune build @all

test:
	dune runtest

chaos:
	dune exec bench/main.exe -- chaos --smoke

# the differential suite: executor vs the pure policy oracles
oracle:
	dune exec test/test_oracle.exe

# fixed-seed scenarios must reproduce the digests in test/golden/
golden:
	dune exec test/test_golden.exe

# What CI runs: full build, the whole test suite (which includes the
# oracle and golden suites), and the chaos acceptance checks at smoke
# scale.
ci: all test oracle golden chaos

bench:
	dune exec bench/main.exe

quick-bench:
	dune exec bench/main.exe -- --quick

examples:
	dune build @examples

clean:
	dune clean
