.PHONY: all test bench examples clean quick-bench chaos ci

all:
	dune build @all

test:
	dune runtest

chaos:
	dune exec bench/main.exe -- chaos --smoke

# What CI runs: full build, the whole test suite, and the chaos
# scenario's acceptance checks at smoke scale.
ci: all test chaos

bench:
	dune exec bench/main.exe

quick-bench:
	dune exec bench/main.exe -- --quick

examples:
	dune build @examples

clean:
	dune clean
