.PHONY: all test bench examples clean quick-bench

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

quick-bench:
	dune exec bench/main.exe -- --quick

examples:
	dune build @examples

clean:
	dune clean
