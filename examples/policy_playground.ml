(* Policy playground: the scientific-simulator scenario — one region,
   many access patterns, every library policy.  Shows how strongly the
   right replacement policy depends on the access pattern, which is the
   paper's whole argument for application-controlled caching.

     dune exec examples/policy_playground.exe *)

open Hipec_core
open Hipec_vm
open Hipec_workloads
module Rng = Hipec_sim.Rng

let npages = 192
let min_frames = 64

let patterns =
  [
    ("cyclic x4", fun _rng -> Access_trace.cyclic ~npages ~loops:4 ~write:false);
    ("reverse x4", fun _rng -> Access_trace.reverse_cyclic ~npages ~loops:4 ~write:false);
    ( "zipf hot-set",
      fun rng -> Access_trace.zipf rng ~npages ~count:(4 * npages) ~theta:0.99 ~write_ratio:0.2
    );
    ( "uniform random",
      fun rng ->
        Access_trace.uniform_random rng ~npages ~count:(4 * npages) ~write_ratio:0.2 );
    ( "phased working set",
      fun rng ->
        Access_trace.working_set_phases rng ~npages ~phases:4 ~phase_len:npages
          ~ws_pages:(min_frames / 2) );
  ]

let policies =
  [
    ("FIFO", fun () -> Policies.fifo ());
    ("LRU", fun () -> Policies.lru ());
    ("MRU", fun () -> Policies.mru ());
    ("CLOCK", fun () -> Policies.clock ());
    ("2nd-chance", fun () -> Policies.fifo_second_chance ());
  ]

let run_one policy trace =
  let config = { Kernel.default_config with Kernel.total_frames = 1_024;
                 hipec_kernel = true } in
  let kernel = Kernel.create ~config () in
  let hipec = Api.init kernel in
  let task = Kernel.create_task kernel () in
  match
    Api.vm_allocate_hipec hipec task ~npages (Api.default_spec ~policy ~min_frames)
  with
  | Error e -> failwith e
  | Ok (region, _) -> Access_trace.faults_during kernel task region trace

let () =
  Printf.printf
    "page faults by (policy x access pattern); %d pages, %d private frames\n\n" npages
    min_frames;
  Printf.printf "  %-20s" "pattern \\ policy";
  List.iter (fun (name, _) -> Printf.printf " %12s" name) policies;
  print_newline ();
  List.iter
    (fun (pattern_name, make_trace) ->
      Printf.printf "  %-20s" pattern_name;
      List.iter
        (fun (_, make_policy) ->
          (* same seed per row so every policy sees the same trace *)
          let trace = make_trace (Rng.create ~seed:99) in
          Printf.printf " %12d" (run_one (make_policy ()) trace))
        policies;
      print_newline ())
    patterns;
  Printf.printf
    "\nno single column wins every row: cyclic scans want MRU, hot sets want\n\
     LRU-like policies, phased programs like second chance.  A fixed kernel\n\
     policy must pick one column; HiPEC lets each application pick its own.\n"
