(* The multimedia scenario from the paper's introduction: a media
   server streams a large file once, sequentially.  Under the default
   kernel the stream's pages pile up in memory (they will never be
   re-read) and push out everyone else's working set.  With HiPEC the
   server installs a "free-behind" policy: consumed pages go straight
   back, so the stream runs in a small, constant footprint.

     dune exec examples/multimedia_stream.exe *)

open Hipec_core
open Hipec_vm
module T = Hipec_sim.Sim_time

(* Free-behind: recycle the page we just finished before asking for
   anything else; footprint stays at minFrame forever. *)
let free_behind =
  {|
var one = 1

event PageFault() {
  if (empty(_free_queue)) {
    /* the stream never re-reads: drop the oldest page */
    fifo(_active_queue)
  }
  page = dequeue_head(_free_queue)
  return page
}

event ReclaimFrame() {
  while (_reclaim_target > 0) {
    if (empty(_free_queue)) {
      fifo(_active_queue)
    }
    release(one)
    _reclaim_target = _reclaim_target - 1
  }
}
|}

let stream_pages = 4_096 (* a 16 MB media file *)

let run_with_hipec () =
  let config = { Kernel.default_config with Kernel.hipec_kernel = true } in
  let kernel = Kernel.create ~config () in
  let hipec = Api.init kernel in
  let task = Kernel.create_task kernel ~name:"media-server" () in
  let spec =
    match Hipec_pseudoc.Translate.to_spec free_behind ~min_frames:32 with
    | Ok s -> s
    | Error e -> failwith e
  in
  match Api.vm_map_hipec hipec task ~name:"video.mpg" ~npages:stream_pages spec with
  | Error e -> failwith e
  | Ok (region, container) ->
      let t0 = Kernel.now kernel in
      Kernel.touch_region kernel task region ~write:false;
      let elapsed = T.sub (Kernel.now kernel) t0 in
      (elapsed, Task.faults task, Container.frames_held container)

let run_with_default () =
  let kernel = Kernel.create () in
  let task = Kernel.create_task kernel ~name:"media-server" () in
  let region = Kernel.vm_map_file kernel task ~name:"video.mpg" ~npages:stream_pages () in
  let t0 = Kernel.now kernel in
  Kernel.touch_region kernel task region ~write:false;
  let elapsed = T.sub (Kernel.now kernel) t0 in
  let resident = Vm_object.resident_count region.Vm_map.obj in
  (elapsed, Task.faults task, resident)

let () =
  Printf.printf "streaming a %d-page (16 MB) file once, sequentially\n\n" stream_pages;
  let d_elapsed, d_faults, d_resident = run_with_default () in
  let h_elapsed, h_faults, h_frames = run_with_hipec () in
  Printf.printf "  %-22s %14s %10s %18s\n" "" "elapsed" "faults" "memory footprint";
  Printf.printf "  %-22s %14s %10d %14d pages\n" "default kernel"
    (Format.asprintf "%a" T.pp d_elapsed)
    d_faults d_resident;
  Printf.printf "  %-22s %14s %10d %14d pages\n" "HiPEC free-behind"
    (Format.asprintf "%a" T.pp h_elapsed)
    h_faults h_frames;
  Printf.printf
    "\nsame streaming time and fault count, but the HiPEC server holds %d pages\n\
     instead of %d -- the rest of memory stays available to other applications,\n\
     which is exactly the interference problem the paper's section 1 describes.\n"
    h_frames d_resident
