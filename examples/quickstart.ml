(* Quickstart: boot a simulated kernel, write a page-replacement policy
   in the pseudo-code language, hand it to the kernel with
   vm_allocate_hipec, and watch it manage a region's paging.

     dune exec examples/quickstart.exe *)

open Hipec_core
open Hipec_vm
module T = Hipec_sim.Sim_time

(* A policy in the paper's pseudo-code language (Figure 4 style): plain
   FIFO eviction, asking the frame manager for more memory before it
   starts evicting. *)
let my_policy =
  {|
var one = 1

event PageFault() {
  if (empty(_free_queue)) {
    if (!request(16)) {
      /* the manager said no: evict the oldest resident page */
      fifo(_active_queue)
    }
  }
  page = dequeue_head(_free_queue)
  return page
}

event ReclaimFrame() {
  while (_reclaim_target > 0) {
    if (empty(_free_queue)) {
      fifo(_active_queue)
    }
    release(one)
    _reclaim_target = _reclaim_target - 1
  }
}
|}

let () =
  (* 1. a 64 MB machine running the HiPEC-extended kernel *)
  let config = { Kernel.default_config with Kernel.hipec_kernel = true } in
  let kernel = Kernel.create ~config () in
  let hipec = Api.init kernel in

  (* 2. translate the pseudo-code policy to HiPEC commands *)
  let spec =
    match Hipec_pseudoc.Translate.to_spec my_policy ~min_frames:64 with
    | Ok spec -> spec
    | Error e -> failwith ("policy: " ^ e)
  in
  Printf.printf "translated policy:\n%s\n"
    (match Hipec_pseudoc.Translate.translate my_policy with
    | Ok out -> Hipec_pseudoc.Translate.listing out
    | Error e -> e);

  (* 3. create a task and put 1 MB of its address space under the policy *)
  let task = Kernel.create_task kernel ~name:"quickstart" () in
  let region, container =
    match Api.vm_allocate_hipec hipec task ~npages:256 spec with
    | Ok rc -> rc
    | Error e -> failwith ("vm_allocate_hipec: " ^ e)
  in
  Printf.printf "region: %d pages at vpn %d, %d private frames (minFrame)\n\n"
    region.Vm_map.npages region.Vm_map.start_vpn
    (Container.frames_held container);

  (* 4. touch all 256 pages, twice *)
  let t0 = Kernel.now kernel in
  Kernel.touch_region kernel task region ~write:true;
  Kernel.touch_region kernel task region ~write:false;
  Kernel.drain_io kernel;

  Printf.printf "after two passes over 256 pages:\n";
  Printf.printf "  elapsed (simulated)     %s\n"
    (Format.asprintf "%a" T.pp (T.sub (Kernel.now kernel) t0));
  Printf.printf "  page faults             %d\n" (Task.faults task);
  Printf.printf "  frames now held         %d (policy grew via Request)\n"
    (Container.frames_held container);
  Printf.printf "  policy events run       %d\n" (Container.events_run container);
  Printf.printf "  commands interpreted    %d\n" (Container.commands_interpreted container);

  (* 5. hand everything back *)
  Api.vm_deallocate_hipec hipec task container;
  Printf.printf "  frames after teardown   %d (all returned)\n"
    (Container.frames_held container)
