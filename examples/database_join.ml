(* The database scenario the paper's introduction motivates: a
   nested-loop join whose outer table exceeds the managed memory.  A
   conventional LRU-like kernel refaults the entire outer table on
   every scan; the application, which knows its own access pattern,
   does far better by giving the kernel an MRU policy via HiPEC.

     dune exec examples/database_join.exe *)

open Hipec_workloads
module T = Hipec_sim.Sim_time

let () =
  (* keep the runs snappy: 16 scans, 16 MB of managed memory *)
  let base =
    {
      Join.default_config with
      Join.memory_mb = 16;
      inner_bytes = 16 * 64;  (* 16 inner tuples = 16 outer scans *)
      total_frames = 8_192;
    }
  in
  Printf.printf "nested-loop join, %d outer scans, %d MB managed memory\n\n"
    (Join.loops base) base.Join.memory_mb;
  Printf.printf "  %6s | %22s | %22s | %8s\n" "outer" "kernel LRU-like" "HiPEC MRU policy"
    "speedup";
  Printf.printf "  %6s | %10s %11s | %10s %11s |\n" "" "elapsed" "faults" "elapsed" "faults";
  List.iter
    (fun outer_mb ->
      let c = { base with Join.outer_mb = outer_mb } in
      let lru = Join.run Join.Kernel_default c in
      let mru = Join.run Join.Hipec_mru c in
      Printf.printf "  %4dMB | %8.2fmin %10d | %8.2fmin %10d | %6.2fx\n" outer_mb
        (T.to_min_f lru.Join.elapsed) lru.Join.faults (T.to_min_f mru.Join.elapsed)
        mru.Join.faults
        (T.to_sec_f lru.Join.elapsed /. T.to_sec_f mru.Join.elapsed))
    [ 8; 12; 16; 20; 24; 28 ];
  print_newline ();
  (* the paper's analytic model, for comparison *)
  let c = { base with Join.outer_mb = 24 } in
  Printf.printf "analytic fault counts at 24 MB: LRU %d, MRU %d (paper's PF formulas)\n"
    (Join.predicted_faults `Lru c)
    (Join.predicted_faults `Mru c);
  Printf.printf
    "once the outer table no longer fits, LRU faults every page of every scan\n\
     while MRU only refaults the overflow -- the crossover the paper reports.\n"
