(* The scientific-simulator scenario from the paper's introduction
   (particle simulation, McDonald 1991): each timestep sweeps a huge
   particle array once and scatters into a small hot grid.

   Under the kernel's single global policy the sequential particle flood
   keeps evicting the grid, so the hot data refaults every step — the
   interference problem of the paper's section 1.  With HiPEC, each
   region has its own private frame list: the particle stream is capped
   at a small free-behind buffer and the grid simply stays resident.

     dune exec examples/particle_sim.exe *)

open Hipec_core
open Hipec_vm
module T = Hipec_sim.Sim_time
module Rng = Hipec_sim.Rng

let frames = 2_048 (* an 8 MB machine *)
let particle_pages = 3_000 (* 12 MB: can never fit *)
let grid_pages = 600 (* 2.4 MB: fits comfortably -- if left alone *)
let steps = 4
let grid_touches_per_step = 3_000

let run_step kernel task ~particles ~grid rng =
  (* sweep the particle array once (read the particle, write it back) *)
  for page = 0 to particle_pages - 1 do
    Kernel.access_vpn kernel task ~vpn:(particles.Vm_map.start_vpn + page) ~write:true
  done;
  (* scatter charge into the grid *)
  for _ = 1 to grid_touches_per_step do
    let page = Rng.int rng grid_pages in
    Kernel.access_vpn kernel task ~vpn:(grid.Vm_map.start_vpn + page) ~write:true
  done

let measure name kernel task ~particles ~grid =
  let rng = Rng.create ~seed:31 in
  Printf.printf "%s\n" name;
  Printf.printf "  %6s %12s %10s\n" "step" "elapsed" "faults";
  for step = 1 to steps do
    let t0 = Kernel.now kernel in
    let f0 = Task.faults task in
    run_step kernel task ~particles ~grid rng;
    Printf.printf "  %6d %10.1fms %10d\n" step
      (T.to_ms_f (T.sub (Kernel.now kernel) t0))
      (Task.faults task - f0)
  done;
  Kernel.drain_io kernel;
  print_newline ()

let () =
  Printf.printf
    "particle simulation: %d-page particle array swept per step,\n\
     %d-page hot grid scattered into, %d-frame machine\n\n"
    particle_pages grid_pages frames;

  (* baseline: one global second-chance policy for everything *)
  let kernel = Kernel.create ~config:{ Kernel.default_config with total_frames = frames } () in
  let task = Kernel.create_task kernel ~name:"sim" () in
  let particles = Kernel.vm_map_file kernel task ~name:"particles" ~npages:particle_pages () in
  let grid = Kernel.vm_allocate kernel task ~npages:grid_pages in
  measure "default kernel (global LRU-like policy):" kernel task ~particles ~grid;

  (* HiPEC: per-region policies with private frame lists *)
  let config = { Kernel.default_config with total_frames = frames; hipec_kernel = true } in
  let kernel = Kernel.create ~config () in
  let hipec = Api.init kernel in
  let task = Kernel.create_task kernel ~name:"sim" () in
  let particles, _ =
    (* free-behind: the stream never re-reads, so 64 frames suffice *)
    match
      Api.vm_map_hipec hipec task ~name:"particles" ~npages:particle_pages
        (Api.default_spec ~policy:(Policies.fifo ()) ~min_frames:64)
    with
    | Ok rc -> rc
    | Error e -> failwith e
  in
  let grid, grid_container =
    match
      Api.vm_allocate_hipec hipec task ~npages:grid_pages
        (Api.default_spec ~policy:(Policies.lru ()) ~min_frames:grid_pages)
    with
    | Ok rc -> rc
    | Error e -> failwith e
  in
  measure "HiPEC (free-behind particles, resident grid):" kernel task ~particles ~grid;
  Printf.printf
    "grid pages resident at the end: %d of %d -- the particle flood never\n\
     touched them, because each region pages against its own frame list.\n"
    (Container.resident_pages grid_container)
    grid_pages
