(* The database the paper's conclusion promises: a mini DBMS whose
   storage layer picks its page-replacement policy per access path
   through HiPEC — MRU for the nested-loop join's cyclic scans, LRU for
   B+-tree point lookups.

     dune exec examples/minidb_demo.exe *)

open Hipec_minidb
module T = Hipec_sim.Sim_time
module Rng = Hipec_sim.Rng

let () =
  let db = Db.create ~frames:8_192 () in
  let rng = Rng.create ~seed:21 in

  (* orders: 256 KB (64 pages), more than its 32-page buffer *)
  let orders_keys = Array.init 4_096 (fun i -> i) in
  let orders =
    Heap_table.create db ~name:"orders" ~buffer_pages:32 ~keys:orders_keys ()
  in
  (* customers: a small table we join against *)
  let customers = Heap_table.create db ~name:"customers" ~keys:(Array.init 8 (fun i -> i * 512)) () in
  (* a primary-key index over orders *)
  let orders_pk = Btree.create db ~name:"orders_pk" ~order:32 ~capacity_pages:512 ~buffer_pages:300 () in
  Array.iteri (fun row key -> Btree.insert orders_pk ~key ~row) orders_keys;

  Printf.printf "tables: orders (%d rows, %d pages, %d-page buffer), customers (%d rows)\n"
    (Heap_table.row_count orders) (Heap_table.pages orders) (Heap_table.buffer_pages orders)
    (Heap_table.row_count customers);
  Printf.printf "index:  orders_pk (%d nodes, height %d)\n\n" (Btree.node_count orders_pk)
    (Btree.height orders_pk);

  (* query 1: the nested-loop join, under each policy *)
  Printf.printf "Q1: SELECT count(*) FROM customers c, orders o WHERE o.key = c.key\n";
  List.iter
    (fun policy ->
      let matches, stats =
        Query.with_table_policy orders policy (fun () ->
            Query.nested_loop_join db ~outer:orders ~inner:customers)
      in
      Printf.printf "  orders under %-13s  %8.1f ms  %6d faults  (%d matches)\n"
        (Db.policy_name policy)
        (T.to_ms_f stats.Query.elapsed)
        stats.Query.faults matches)
    [ Db.Second_chance; Db.Mru ];

  (* the algorithmic alternative: a hash join reads each table once, so
     the replacement policy stops mattering — HiPEC is for the cases
     where you cannot (or will not) change the algorithm *)
  let matches, stats = Query.hash_join db ~outer:orders ~inner:customers in
  Printf.printf "  (hash join, any policy)      %8.1f ms  %6d faults  (%d matches)\n"
    (T.to_ms_f stats.Query.elapsed)
    stats.Query.faults matches;

  (* query 2: Zipf-skewed point lookups — popularity spread across the
     whole table, so retaining re-referenced pages (LRU) pays and
     evicting them (MRU) refaults the favourites *)
  let probe_keys =
    Array.map
      (fun a -> a.Hipec_workloads.Access_trace.page)
      (Hipec_workloads.Access_trace.zipf rng ~npages:4_096 ~count:4_000 ~theta:0.8
         ~write_ratio:0.)
  in
  Printf.printf "\nQ2: 4000 Zipf-skewed point lookups via orders_pk\n";
  List.iter
    (fun policy ->
      let hits, stats =
        Query.with_table_policy orders policy (fun () ->
            Query.index_lookups db orders_pk orders ~keys:probe_keys)
      in
      Printf.printf "  orders under %-13s  %8.1f ms  %6d faults  (%d hits)\n"
        (Db.policy_name policy)
        (T.to_ms_f stats.Query.elapsed)
        stats.Query.faults hits)
    [ Db.Mru; Db.Lru ];

  (* query 3: selection scan *)
  let count, stats = Query.select_count db orders ~pred:(fun k -> k mod 7 = 0) in
  Printf.printf "\nQ3: SELECT count(*) FROM orders WHERE key %% 7 = 0\n";
  Printf.printf "  full scan                  %8.1f ms  %6d faults  (%d rows)\n"
    (T.to_ms_f stats.Query.elapsed)
    stats.Query.faults count;

  Printf.printf
    "\nthe planner's choice is per access path: MRU wins the cyclic join scans,\n\
     LRU wins the skewed lookups -- one fixed kernel policy cannot do both,\n\
     which is why the paper ends by promising exactly this database.\n"
